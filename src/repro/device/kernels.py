"""Roofline cost model for every kernel class the MIP solver issues.

A kernel's simulated duration is the classic roofline bound

    launch_latency + max(flops / sustained_flops, bytes / mem_bandwidth)

plus, for level-scheduled sparse factorizations, one device-wide
synchronization per level (the GLU-style critical path, paper §4.2).
``sustained_flops`` folds in the device's dense/sparse efficiency and a
utilization factor for under-sized kernels — the two effects the paper's
§4–§5 design discussion revolves around.

Kernel *builders* below return a :class:`KernelCost` from problem shapes;
:class:`repro.device.gpu.Device` executes the numerics and charges the
cost to its clock/streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.spec import DeviceSpec
from repro.la import flops as F


@dataclass(frozen=True)
class KernelCost:
    """Shape-derived cost of one kernel launch."""

    name: str
    flops: int
    bytes_moved: int
    #: Independent scalar work items available at once (utilization input).
    parallel_elements: int
    #: True for irregular/divergent kernels (sparse efficiency applies).
    sparse: bool = False
    #: Device-wide synchronization points inside the kernel (levels).
    serial_depth: int = 0

    def duration(self, spec: DeviceSpec) -> float:
        """Simulated seconds this kernel occupies the device."""
        sustained = spec.effective_flops(self.parallel_elements, self.sparse)
        compute = self.flops / sustained if self.flops else 0.0
        memory = self.bytes_moved / spec.mem_bandwidth if self.bytes_moved else 0.0
        sync = self.serial_depth * spec.sync_latency
        return spec.kernel_launch_latency + max(compute, memory) + sync

    def failed_duration(self, spec: DeviceSpec, fraction: float) -> float:
        """Seconds wasted by a launch that dies ``fraction`` of the way in.

        The launch latency is paid in full even for an immediate abort;
        the remaining body is prorated.  Used by the fault injector to
        price the partial work of a failed attempt.
        """
        frac = min(max(fraction, 0.0), 1.0)
        body = self.duration(spec) - spec.kernel_launch_latency
        return spec.kernel_launch_latency + body * frac


def gemm_kernel(m: int, n: int, k: int) -> KernelCost:
    """Dense matrix multiply C(m,n) = A(m,k) B(k,n)."""
    return KernelCost(
        name="gemm",
        flops=F.gemm_flops(m, n, k),
        bytes_moved=F.gemm_bytes(m, n, k),
        parallel_elements=m * n,
    )


def gemv_kernel(m: int, n: int) -> KernelCost:
    """Dense matrix-vector product."""
    return KernelCost(
        name="gemv",
        flops=F.gemv_flops(m, n),
        bytes_moved=F.gemv_bytes(m, n),
        parallel_elements=m,
    )


def axpy_kernel(n: int) -> KernelCost:
    """Vector update y += a x."""
    return KernelCost(
        name="axpy",
        flops=F.axpy_flops(n),
        bytes_moved=3 * F.vector_bytes(n),
        parallel_elements=n,
    )


def dot_kernel(n: int) -> KernelCost:
    """Dot product (tree reduction → log-depth sync charged as 1)."""
    return KernelCost(
        name="dot",
        flops=F.dot_flops(n),
        bytes_moved=2 * F.vector_bytes(n),
        parallel_elements=n,
        serial_depth=1,
    )


def getrf_kernel(n: int) -> KernelCost:
    """Dense LU factorization.

    The per-column pivot search serializes n device-wide steps; the
    trailing updates dominate flops.  Parallelism per step is ~n² but we
    charge the mean trailing block (n²/4) to reflect shrink-to-zero.
    """
    return KernelCost(
        name="getrf",
        flops=F.lu_flops(n),
        bytes_moved=F.matrix_bytes(n, n),
        parallel_elements=max(1, (n * n) // 4),
        serial_depth=n,
    )


def potrf_kernel(n: int) -> KernelCost:
    """Dense Cholesky factorization."""
    return KernelCost(
        name="potrf",
        flops=F.cholesky_flops(n),
        bytes_moved=F.matrix_bytes(n, n),
        parallel_elements=max(1, (n * n) // 4),
        serial_depth=n,
    )


def trsv_kernel(n: int) -> KernelCost:
    """Dense triangular solve, one RHS (level-blocked).

    Production GPU solvers block the substitution into ~32-row panels:
    within a panel rows resolve via a small dense inverse, so the serial
    depth is n/32 panels, with panel-GEMV parallelism between them.
    """
    return KernelCost(
        name="trsv",
        flops=F.trsv_flops(n),
        bytes_moved=F.matrix_bytes(n, n) // 2 + 2 * F.vector_bytes(n),
        parallel_elements=max(1, 4 * n),
        serial_depth=max(1, n // 32),
    )


def trsm_kernel(n: int, nrhs: int) -> KernelCost:
    """Dense triangular solve with many RHS (parallelism across RHS)."""
    return KernelCost(
        name="trsm",
        flops=F.trsm_flops(n, nrhs),
        bytes_moved=F.matrix_bytes(n, n) // 2 + 2 * F.matrix_bytes(n, nrhs),
        parallel_elements=max(1, nrhs * n // 2),
        serial_depth=max(1, n // 32),
    )


def spmv_kernel(m: int, nnz: int) -> KernelCost:
    """CSR sparse matrix-vector product (irregular gather)."""
    return KernelCost(
        name="spmv",
        flops=F.spmv_flops(nnz),
        bytes_moved=F.csr_bytes(m, nnz) + 2 * F.vector_bytes(m),
        parallel_elements=m,
        sparse=True,
    )


def sparse_getrf_kernel(n: int, factor_nnz: int, num_levels: int) -> KernelCost:
    """Level-scheduled sparse LU (GLU-style).

    ``num_levels`` is the column-DAG critical path from
    :class:`repro.la.sparse_lu.SparseLU`; each level is one device-wide
    sync, which is exactly why few-level (well-parallelizable) matrices
    run well on GPUs and long chains do not (paper §4.2).
    """
    per_level = max(1, n // max(1, num_levels))
    return KernelCost(
        name="sparse_getrf",
        flops=F.sparse_lu_flops(factor_nnz),
        bytes_moved=F.csr_bytes(n, factor_nnz),
        parallel_elements=per_level * 8,  # ~8 scalar ops live per column
        sparse=True,
        serial_depth=num_levels,
    )


def sparse_trsv_kernel(n: int, factor_nnz: int, num_levels: int) -> KernelCost:
    """Sparse triangular solve over the same level schedule."""
    return KernelCost(
        name="sparse_trsv",
        flops=F.spmv_flops(factor_nnz),
        bytes_moved=F.csr_bytes(n, factor_nnz),
        parallel_elements=max(1, n // max(1, num_levels)),
        sparse=True,
        serial_depth=num_levels,
    )


def batched_getrf_kernel(batch: int, n: int) -> KernelCost:
    """Batched LU: one launch, batch×n² parallel elements (paper §5.5).

    The serial depth is n (lockstep elimination steps), *not* batch×n —
    the whole point of batching.
    """
    return KernelCost(
        name="batched_getrf",
        flops=batch * F.lu_flops(n),
        bytes_moved=batch * F.matrix_bytes(n, n),
        parallel_elements=batch * max(1, (n * n) // 4),
        serial_depth=n,
    )


def batched_potrf_kernel(batch: int, n: int) -> KernelCost:
    """Batched Cholesky."""
    return KernelCost(
        name="batched_potrf",
        flops=batch * F.cholesky_flops(n),
        bytes_moved=batch * F.matrix_bytes(n, n),
        parallel_elements=batch * max(1, (n * n) // 4),
        serial_depth=n,
    )


def batched_trsv_kernel(batch: int, n: int) -> KernelCost:
    """Batched triangular solves (parallel across the batch)."""
    return KernelCost(
        name="batched_trsv",
        flops=batch * F.trsv_flops(n),
        bytes_moved=batch * (F.matrix_bytes(n, n) // 2 + 2 * F.vector_bytes(n)),
        parallel_elements=batch * max(1, n // 2),
        serial_depth=n,
    )


def eta_chain_kernel(n: int, num_etas: int) -> KernelCost:
    """Apply a chain of ``num_etas`` eta updates to an n-vector (fused).

    Real GPU simplex codes fuse the product-form update chain into one
    kernel ([28]/[31] in the paper); each eta is an axpy+scale that must
    follow the previous, so the chain contributes serial depth.
    """
    return KernelCost(
        name="eta_chain",
        flops=num_etas * (F.axpy_flops(n) + 1),
        bytes_moved=(num_etas + 2) * F.vector_bytes(n),
        parallel_elements=n,
        serial_depth=max(1, num_etas),
    )


def batched_gemm_kernel(batch: int, m: int, n: int, k: int) -> KernelCost:
    """Batched GEMM."""
    return KernelCost(
        name="batched_gemm",
        flops=batch * F.gemm_flops(m, n, k),
        bytes_moved=batch * F.gemm_bytes(m, n, k),
        parallel_elements=batch * m * n,
    )
