"""Capacity-accounted device memory allocator.

Strategy 1 of the paper (§3) fails precisely because branch-and-cut trees
outgrow device memory; the allocator makes that failure mode *observable*
by accounting every allocation against the device's capacity and raising
:class:`DeviceMemoryError` on exhaustion.  Peak usage is tracked so
experiments can report footprints.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import DeviceMemoryError, InvalidHandleError


class MemoryPool:
    """Byte-granular allocator for a fixed-capacity memory."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._used = 0
        self._peak = 0
        self._next_handle = 1
        self._allocations: Dict[int, int] = {}

    @property
    def capacity(self) -> int:
        """Total bytes this memory can hold."""
        return self._capacity

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free(self) -> int:
        """Bytes currently available."""
        return self._capacity - self._used

    @property
    def peak(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak

    @property
    def num_allocations(self) -> int:
        """Count of live allocations."""
        return len(self._allocations)

    def alloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns an opaque handle.

        Raises :class:`DeviceMemoryError` when capacity would be exceeded.
        """
        if nbytes < 0:
            raise ValueError(f"cannot allocate negative bytes ({nbytes})")
        if self._used + nbytes > self._capacity:
            raise DeviceMemoryError(nbytes, self.free, self._capacity)
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = nbytes
        self._used += nbytes
        self._peak = max(self._peak, self._used)
        return handle

    def size_of(self, handle: int) -> int:
        """Bytes held by a live allocation."""
        try:
            return self._allocations[handle]
        except KeyError:
            raise InvalidHandleError(f"unknown or freed handle {handle}") from None

    def freeing(self, handle: int) -> int:
        """Free an allocation; returns the bytes released."""
        nbytes = self.size_of(handle)
        del self._allocations[handle]
        self._used -= nbytes
        return nbytes

    def would_fit(self, nbytes: int) -> bool:
        """True when an allocation of ``nbytes`` would currently succeed."""
        return nbytes >= 0 and self._used + nbytes <= self._capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryPool(used={self._used}/{self._capacity} B, "
            f"peak={self._peak} B, live={len(self._allocations)})"
        )
