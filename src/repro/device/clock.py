"""Monotone simulated clock.

Every subsystem that models time (device kernels, transfers, network
messages, worker ranks) advances a :class:`SimClock`.  The clock only
moves forward; attempts to move it backward raise, which property tests
rely on to catch cost-model bugs.
"""

from __future__ import annotations

from repro.errors import DeviceError


class SimClock:
    """A simulated wall clock measured in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        if start < 0.0:
            raise DeviceError(f"clock cannot start negative ({start})")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new time."""
        if seconds < 0.0:
            raise DeviceError(f"cannot advance clock by negative {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, when: float) -> float:
        """Move time forward to absolute time ``when`` (no-op if past)."""
        if when > self._now:
            self._now = when
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.9f})"
