"""Multi-GPU device groups with peer-to-peer transfers.

Paper §3.1 notes that an all-GPU design "can be fast if direct GPU to
GPU communication is supported over the network by the parallel system
architecture", and Summit-class nodes wire their GPUs with NVLink.
:class:`DeviceGroup` models a set of same-spec devices joined by a peer
link: point-to-point copies, ring allreduce, and broadcast — the
intra-node collectives a sharded LP (strategy 4) or a multi-GPU batch
solver would use instead of host-mediated MPI.
"""

from __future__ import annotations

from typing import List, Optional

import math

from repro.device.gpu import Device
from repro.device.spec import NVLINK, DeviceSpec, LinkSpec, V100
from repro.errors import DeviceError
from repro.metrics import Metrics


def allreduce_seconds(link: LinkSpec, k: int, nbytes: int) -> float:
    """Cost of an allreduce over ``k`` peers: best of tree and ring."""
    if k <= 1:
        return 0.0
    depth = max(1, math.ceil(math.log2(k)))
    tree = 2 * depth * link.transfer_time(nbytes)
    chunk = max(1, nbytes // k)
    ring = 2 * (k - 1) * link.transfer_time(chunk)
    return min(tree, ring)


class DeviceGroup:
    """``k`` same-spec devices joined by a peer (NVLink-class) link."""

    def __init__(
        self,
        num_devices: int,
        spec: DeviceSpec = V100,
        peer_link: LinkSpec = NVLINK,
        metrics: Optional[Metrics] = None,
    ):
        if num_devices < 1:
            raise DeviceError(f"group needs >= 1 device, got {num_devices}")
        self.devices: List[Device] = [Device(spec) for _ in range(num_devices)]
        self.peer_link = peer_link
        self.metrics = metrics if metrics is not None else Metrics()

    @property
    def size(self) -> int:
        """Devices in the group."""
        return len(self.devices)

    def device(self, rank: int) -> Device:
        """Member device by index."""
        if not 0 <= rank < self.size:
            raise DeviceError(f"device rank {rank} out of range 0..{self.size - 1}")
        return self.devices[rank]

    def least_loaded(self) -> int:
        """Rank of the member whose clock is furthest behind (ties → lowest).

        A serving scheduler uses this to keep every member busy: the
        device with the earliest clock is the first one free to accept
        the next batch.
        """
        best = 0
        for rank in range(1, self.size):
            if self.devices[rank].clock.now < self.devices[best].clock.now:
                best = rank
        return best

    def peer_transfer(self, src: int, dst: int, nbytes: int) -> float:
        """Direct device→device copy; both clocks advance together."""
        if src == dst:
            return 0.0
        a, b = self.device(src), self.device(dst)
        seconds = self.peer_link.transfer_time(int(nbytes))
        finish = max(a.clock.now, b.clock.now) + seconds
        a.clock.advance_to(finish)
        b.clock.advance_to(finish)
        self.metrics.inc("p2p.transfers")
        self.metrics.inc("p2p.bytes", int(nbytes))
        self.metrics.add_time("time.p2p", seconds)
        return seconds

    def broadcast(self, root: int, nbytes: int) -> float:
        """Binary-tree broadcast from ``root``; returns elapsed seconds."""
        self.device(root)
        depth = max(1, math.ceil(math.log2(max(2, self.size)))) if self.size > 1 else 0
        seconds = depth * self.peer_link.transfer_time(int(nbytes))
        finish = max(d.clock.now for d in self.devices) + seconds
        for d in self.devices:
            d.clock.advance_to(finish)
        self.metrics.inc("p2p.broadcasts")
        return seconds

    def allreduce(self, nbytes: int) -> float:
        """Allreduce, NCCL-style: min of tree (latency-optimal) and
        ring (bandwidth-optimal) algorithms for this message size."""
        k = self.size
        if k == 1:
            return 0.0
        seconds = allreduce_seconds(self.peer_link, k, int(nbytes))
        finish = max(d.clock.now for d in self.devices) + seconds
        for d in self.devices:
            d.clock.advance_to(finish)
        self.metrics.inc("p2p.allreduces")
        self.metrics.add_time("time.allreduce", seconds)
        return seconds

    def synchronize(self) -> float:
        """Align all member clocks to the group maximum."""
        for d in self.devices:
            d.synchronize()
        finish = max(d.clock.now for d in self.devices)
        for d in self.devices:
            d.clock.advance_to(finish)
        return finish

    @property
    def makespan(self) -> float:
        """Slowest member's clock."""
        return max(d.clock.now for d in self.devices)
