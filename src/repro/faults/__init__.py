"""repro.faults — seeded, deterministic fault injection + recovery.

The paper's platform is a Summit-class machine where long-running
supervisor–worker branch-and-bound must survive device and rank
failures via checkpointing and rebalancing (§2.3); this package makes
failure *injectable* and recovery *testable* across every simulated
layer:

- :mod:`repro.faults.plan` — :class:`FaultPlan`: seed, per-site rates,
  scheduled faults, failure budget, retry policy; JSON-replayable;
- :mod:`repro.faults.injector` — the deterministic injector the
  device, transfer engine, SimMPI, B&B driver, and serve scheduler
  consult (``active()`` / ``injecting(plan)``), plus the
  injected/recovered/tolerated/escaped accounting;
- :mod:`repro.faults.recovery` — checkpoint-resume drivers for the
  sequential B&B search and the distributed supervisor–worker run;
- :mod:`repro.faults.chaos` — the pinned corpus + harness behind
  ``repro chaos`` and ``make chaos``.

Typical use::

    from repro.api import solve, SolveOptions
    from repro.faults import FaultPlan

    plan = FaultPlan.survivable(seed=7)
    report = solve(problem, SolveOptions(strategy="gpu_only", fault_plan=plan))
    report.metrics["faults"]   # {'injected': n, 'recovered': ..., ...}

``recovery`` and ``chaos`` import the solver stack, which imports this
package's injector — keep this ``__init__`` limited to ``plan`` +
``injector`` so the cycle never closes.
"""

from repro.faults.injector import FaultInjector, active, injecting
from repro.faults.plan import (
    SITE_ECC,
    SITE_GROUP,
    SITE_KERNEL,
    SITE_NODE,
    SITE_RANK,
    SITE_TRANSFER,
    SITE_WORKER,
    SITES,
    TRANSFER_KINDS,
    FaultPlan,
    RetryPolicy,
    ScheduledFault,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "ScheduledFault",
    "active",
    "injecting",
    "SITES",
    "SITE_KERNEL",
    "SITE_ECC",
    "SITE_TRANSFER",
    "SITE_RANK",
    "SITE_WORKER",
    "SITE_NODE",
    "SITE_GROUP",
    "TRANSFER_KINDS",
]
