"""The fault injector: deterministic draws, accounting, site helpers.

One :class:`FaultInjector` is installed per chaos run via
:func:`injecting`; the instrumented layers (device, transfer engine,
SimMPI, the B&B driver, the serve scheduler) consult :func:`active` and
call the site helpers below.  Everything is deterministic:

- every site draws from its own ``random.Random(f"{seed}:{site}")``
  stream, so adding draws at one site never perturbs another;
- occurrence counters advance on every consult, fault or not, so a
  scheduled fault pinned to occurrence ``k`` fires at exactly the same
  operation on every replay.

Accounting: every injected fault increments ``fault.injected`` and must
be *resolved* exactly once —

- ``fault.recovered`` — masked by a retry / re-dispatch / resume;
- ``fault.tolerated`` — absorbed by degrading to a fallback strategy;
- ``fault.escaped``  — surfaced to the caller as a failure.

A clean chaos run satisfies ``injected == recovered + tolerated`` with
``escaped == 0`` (:attr:`FaultInjector.clean`).  :class:`FaultError`
subclasses carry ``fault_count`` so the layer that finally handles an
error knows how many unresolved injections it is accounting for.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro import obs
from repro.errors import (
    EccError,
    FaultError,
    KernelFaultError,
    TransferFaultError,
)
from repro.faults.plan import (
    SITE_ECC,
    SITE_GROUP,
    SITE_KERNEL,
    SITE_NODE,
    SITE_RANK,
    SITE_TRANSFER,
    SITE_WORKER,
    TRANSFER_KINDS,
    FaultPlan,
)
from repro.metrics import Metrics


class FaultInjector:
    """Executes one :class:`FaultPlan` against a workload."""

    def __init__(self, plan: FaultPlan, metrics: Optional[Metrics] = None):
        self.plan = plan
        self.metrics = metrics if metrics is not None else Metrics()
        self._occurrences: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._scheduled = {}
        for fault in plan.scheduled:
            qualifier = fault.rank if fault.site == SITE_RANK else None
            self._scheduled[(fault.site, qualifier, fault.at)] = fault
        self._injected = 0
        self._recovered = 0
        self._tolerated = 0
        self._escaped = 0

    # -- deterministic draws -----------------------------------------------------

    def _rng(self, key: str) -> random.Random:
        rng = self._rngs.get(key)
        if rng is None:
            # Version-2 string seeding is stable across processes/runs.
            rng = random.Random(f"{self.plan.seed}:{key}")
            self._rngs[key] = rng
        return rng

    def _budget_left(self) -> bool:
        budget = self.plan.max_faults
        return budget is None or self._injected < budget

    def _default_kind(self, site: str, key: str) -> str:
        if site == SITE_TRANSFER:
            return self._rng(key + ":kind").choice(TRANSFER_KINDS)
        return ""

    def fire(self, site: str, qualifier: Optional[int] = None) -> Optional[str]:
        """Count one occurrence at ``site``; fault kind if one fires.

        Returns None for a clean occurrence.  Scheduled faults fire
        unconditionally; rate-based faults respect the failure budget.
        """
        key = site if qualifier is None else f"{site}[{qualifier}]"
        idx = self._occurrences.get(key, 0)
        self._occurrences[key] = idx + 1

        kind: Optional[str] = None
        scheduled = self._scheduled.get((site, qualifier, idx))
        if scheduled is not None:
            kind = scheduled.kind or self._default_kind(site, key)
        elif self._budget_left():
            rate = self.plan.rates.get(site, 0.0)
            if rate > 0.0 and self._rng(key).random() < rate:
                kind = self._default_kind(site, key)
        if kind is None:
            return None

        self._injected += 1
        self.metrics.inc("fault.injected")
        self.metrics.inc(f"fault.injected.{site}")
        obs.event(
            "fault.injected", category="fault", site=site, kind=kind, occurrence=idx
        )
        return kind

    def occurrences(self, site: str, qualifier: Optional[int] = None) -> int:
        """Occurrence-counter value for a site (diagnostics/tests)."""
        key = site if qualifier is None else f"{site}[{qualifier}]"
        return self._occurrences.get(key, 0)

    # -- resolution accounting ---------------------------------------------------

    def resolve_recovered(self, count: int = 1, site: str = "") -> None:
        """Mark ``count`` injected faults as masked by recovery."""
        if count <= 0:
            return
        self._recovered += count
        self.metrics.inc("fault.recovered", count)
        if site:
            self.metrics.inc(f"fault.recovered.{site}", count)

    def resolve_tolerated(self, count: int = 1, site: str = "") -> None:
        """Mark ``count`` injected faults as absorbed by degradation."""
        if count <= 0:
            return
        self._tolerated += count
        self.metrics.inc("fault.tolerated", count)
        if site:
            self.metrics.inc(f"fault.tolerated.{site}", count)

    def resolve_escaped(self, count: int = 1, site: str = "") -> None:
        """Mark ``count`` injected faults as surfaced to the caller."""
        if count <= 0:
            return
        self._escaped += count
        self.metrics.inc("fault.escaped", count)
        if site:
            self.metrics.inc(f"fault.escaped.{site}", count)

    def counts(self) -> Dict[str, int]:
        """The four accounting totals."""
        return {
            "injected": self._injected,
            "recovered": self._recovered,
            "tolerated": self._tolerated,
            "escaped": self._escaped,
        }

    @property
    def balanced(self) -> bool:
        """Every injected fault has been resolved exactly once."""
        return self._injected == self._recovered + self._tolerated + self._escaped

    @property
    def clean(self) -> bool:
        """Balanced with nothing escaped — the acceptance invariant."""
        return self.balanced and self._escaped == 0

    def summary(self) -> Dict:
        """Counts + per-site breakdown for reports."""
        out: Dict = dict(self.counts())
        out["sites"] = {
            name: count
            for name, count in sorted(self.metrics.counters.items())
            if name.startswith("fault.injected.")
        }
        return out

    # -- shared recovery pricing -------------------------------------------------

    def backoff(self, attempt: int) -> float:
        """Jittered exponential backoff delay before retry ``attempt + 1``."""
        delay = self.plan.retry.delay(attempt, self._rng("backoff"))
        self.metrics.observe("fault.backoff_seconds", delay)
        return delay

    # -- site helpers (called by the instrumented layers) ------------------------

    def kernel_attempt(self, cost, spec) -> float:
        """Draw faults for one kernel launch; wasted simulated seconds.

        Failed launches retry in place (up to ``retry.max_attempts``)
        and their partial work plus backoff is returned as overhead the
        device charges on top of the successful launch.  Raises
        :class:`EccError` on an uncorrectable error and
        :class:`KernelFaultError` when retries are exhausted — both
        carrying the unresolved ``fault_count``.
        """
        policy = self.plan.retry
        waste_rng = self._rng(SITE_KERNEL + ":waste")
        wasted = 0.0
        failures = 0
        while True:
            if self.fire(SITE_ECC) is not None:
                raise EccError(cost.name, fault_count=failures + 1)
            if self.fire(SITE_KERNEL) is None:
                if failures:
                    self.resolve_recovered(failures, site=SITE_KERNEL)
                    self.metrics.observe("fault.kernel.wasted_seconds", wasted)
                    self.metrics.observe("fault.retry.attempts", failures)
                return wasted
            failures += 1
            wasted += cost.failed_duration(spec, waste_rng.random())
            if failures >= policy.max_attempts:
                raise KernelFaultError(cost.name, failures, fault_count=failures)
            wasted += self.backoff(failures)

    def transfer_attempt(self, direction: str, seconds: float) -> float:
        """Draw faults for one h2d/d2h crossing; wasted simulated seconds.

        Timeouts waste ``transfer_timeout_factor`` × the nominal cost;
        corruptions waste one full (re-checked) crossing.  Raises
        :class:`TransferFaultError` when retries are exhausted.
        """
        policy = self.plan.retry
        wasted = 0.0
        failures = 0
        while True:
            kind = self.fire(SITE_TRANSFER)
            if kind is None:
                if failures:
                    self.resolve_recovered(failures, site=SITE_TRANSFER)
                    self.metrics.observe("fault.transfer.wasted_seconds", wasted)
                    self.metrics.observe("fault.retry.attempts", failures)
                return wasted
            failures += 1
            if kind == "timeout":
                wasted += seconds * self.plan.transfer_timeout_factor
            else:
                wasted += seconds
            if failures >= policy.max_attempts:
                raise TransferFaultError(
                    direction, kind, failures, fault_count=failures
                )
            wasted += self.backoff(failures)

    def rank_drop(self, rank: int) -> bool:
        """True when ``rank`` drops at this resume (per-rank counters)."""
        return self.fire(SITE_RANK, qualifier=rank) is not None

    def worker_crash(self, batch_size: int, lockstep: bool) -> Optional[int]:
        """Crash point for one dispatched batch, or None.

        Returns the index of the first lost member: members ``[j:]``
        were in flight when the worker died and must be re-dispatched.
        A lockstep batch is one fused kernel sequence, so the whole
        batch is in flight (j = 0).
        """
        if self.fire(SITE_WORKER) is None:
            return None
        if lockstep or batch_size <= 1:
            return 0
        return self._rng(SITE_WORKER + ":index").randrange(batch_size)

    def node_kill(self) -> bool:
        """True when the B&B driver dies after this node pop."""
        return self.fire(SITE_NODE) is not None

    def group_kill(self) -> bool:
        """True when a whole cluster worker group fail-stops now.

        The cluster front door consults this once per admission while
        more than one group is live (the last group is never killable);
        on True it picks the deterministic victim, re-routes the dead
        group's in-flight work, and resolves the fault as recovered.
        """
        return self.fire(SITE_GROUP) is not None


_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The installed injector, or None when fault injection is off."""
    return _ACTIVE


@contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Install a fresh injector for ``plan`` for the duration of the block."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise FaultError("fault injection is already active")
    injector = FaultInjector(plan)
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None
