"""Fault plans: the seeded, replayable description of what will break.

A :class:`FaultPlan` is the whole input of the fault-injection plane —
a seed, per-site Bernoulli fault rates, an explicit schedule of faults
pinned to occurrence indices, a total failure budget, and the recovery
policy (retry/backoff, strategy degradation).  Everything downstream is
a pure function of the plan: running the same plan against the same
workload reproduces the same faults, the same recoveries, and the same
final report — a chaos run *is* its plan, which makes every failure a
replayable bug report (``FaultPlan.save`` / ``FaultPlan.load``).

Injection sites (occurrence counters are per site; ``comm.rank``
counts per rank):

========================  ====================================================
``device.kernel``         one kernel launch dies partway (in-place retry)
``device.ecc``            uncorrectable ECC error (retry cannot help)
``device.transfer``       h2d/d2h crossing times out or arrives corrupted
``comm.rank``             a simulated MPI rank drops out mid-run
``serve.worker``          a serve worker crashes mid-batch
``mip.node``              the B&B driver is killed after a node pop
``cluster.group``         a whole cluster worker group fail-stops
========================  ====================================================
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultError

SITE_KERNEL = "device.kernel"
SITE_ECC = "device.ecc"
SITE_TRANSFER = "device.transfer"
SITE_RANK = "comm.rank"
SITE_WORKER = "serve.worker"
SITE_NODE = "mip.node"
SITE_GROUP = "cluster.group"

#: Every recognised injection site.
SITES = (
    SITE_KERNEL,
    SITE_ECC,
    SITE_TRANSFER,
    SITE_RANK,
    SITE_WORKER,
    SITE_NODE,
    SITE_GROUP,
)

#: Kinds a transfer fault may take (rate-based faults draw uniformly).
TRANSFER_KINDS = ("timeout", "corrupt")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``max_attempts`` bounds the total tries per operation (1 = never
    retry); ``delay(attempt, rng)`` prices the wait before attempt
    ``attempt + 1`` in simulated seconds.
    """

    max_attempts: int = 3
    base_delay: float = 1e-4
    factor: float = 2.0
    #: Fraction of the base delay added as uniform jitter.
    jitter: float = 0.5

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before the next try, after ``attempt`` failures."""
        base = self.base_delay * self.factor ** max(0, attempt - 1)
        return base * (1.0 + self.jitter * rng.random())

    def to_dict(self) -> Dict[str, float]:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "factor": self.factor,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "RetryPolicy":
        return cls(
            max_attempts=int(doc.get("max_attempts", 3)),
            base_delay=float(doc.get("base_delay", 1e-4)),
            factor=float(doc.get("factor", 2.0)),
            jitter=float(doc.get("jitter", 0.5)),
        )


@dataclass(frozen=True)
class ScheduledFault:
    """One fault pinned to a site's ``at``-th occurrence (0-based).

    Scheduled faults always fire (they bypass the rate draw and the
    failure budget) — they are the "replay exactly this" primitive.
    For ``comm.rank`` the occurrence counter is per rank, so ``rank``
    must be set; other sites ignore it.
    """

    site: str
    at: int
    #: Fault kind ("" = the site's default; transfers: timeout/corrupt).
    kind: str = ""
    #: Target rank for ``comm.rank`` faults (-1 elsewhere).
    rank: int = -1

    def __post_init__(self):
        if self.site not in SITES:
            raise FaultError(f"unknown fault site {self.site!r}")
        if self.site == SITE_RANK and self.rank < 0:
            raise FaultError("comm.rank faults must name a rank")

    def to_dict(self) -> Dict:
        return {"site": self.site, "at": self.at, "kind": self.kind, "rank": self.rank}

    @classmethod
    def from_dict(cls, doc: Dict) -> "ScheduledFault":
        return cls(
            site=doc["site"],
            at=int(doc["at"]),
            kind=doc.get("kind", ""),
            rank=int(doc.get("rank", -1)),
        )


#: On-disk format version for saved plans.
PLAN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FaultPlan:
    """Everything the injector needs, and nothing it cannot replay."""

    seed: int = 0
    #: Per-site Bernoulli fault probability per occurrence.
    rates: Dict[str, float] = field(default_factory=dict)
    #: Faults pinned to exact occurrence indices.
    scheduled: Tuple[ScheduledFault, ...] = ()
    #: Total rate-based faults allowed (None = unlimited); scheduled
    #: faults always fire but still count toward the injected total.
    max_faults: Optional[int] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Allow GPU→CPU strategy degradation on unrecoverable device faults.
    degrade: bool = True
    #: Wasted time of a timed-out transfer, as a multiple of its nominal cost.
    transfer_timeout_factor: float = 2.0
    name: str = ""

    def __post_init__(self):
        for site in self.rates:
            if site not in SITES:
                raise FaultError(f"unknown fault site {site!r} in rates")
        for site, rate in self.rates.items():
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"rate for {site!r} must be in [0, 1], got {rate}")

    # -- introspection -----------------------------------------------------------

    def touches(self, site: str) -> bool:
        """True when this plan can ever fire at ``site``."""
        if self.rates.get(site, 0.0) > 0.0:
            return True
        return any(f.site == site for f in self.scheduled)

    @property
    def empty(self) -> bool:
        """True when no site can ever fire."""
        return not any(self.touches(site) for site in SITES)

    def with_name(self, name: str) -> "FaultPlan":
        return replace(self, name=name)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def generate(
        cls, seed: int, intensity: str = "light", max_faults: Optional[int] = None
    ) -> "FaultPlan":
        """A seeded random-rate plan at a named intensity profile."""
        profiles = {
            "light": {SITE_KERNEL: 0.02, SITE_TRANSFER: 0.02, SITE_WORKER: 0.05},
            "heavy": {
                SITE_KERNEL: 0.08,
                SITE_ECC: 0.01,
                SITE_TRANSFER: 0.08,
                SITE_WORKER: 0.2,
                SITE_NODE: 0.02,
            },
        }
        try:
            base = profiles[intensity]
        except KeyError:
            raise FaultError(
                f"unknown intensity {intensity!r}; choose from {sorted(profiles)}"
            ) from None
        rng = random.Random(f"plan:{seed}:{intensity}")
        rates = {site: rate * (0.5 + rng.random()) for site, rate in base.items()}
        budget = max_faults if max_faults is not None else 4
        return cls(
            seed=seed,
            rates=rates,
            max_faults=budget,
            retry=RetryPolicy(max_attempts=budget + 2),
            name=f"{intensity}-{seed}",
        )

    @classmethod
    def survivable(
        cls,
        seed: int,
        budget: int = 3,
        rates: Optional[Dict[str, float]] = None,
    ) -> "FaultPlan":
        """A plan whose failure budget guarantees eventual completion.

        With ``retry.max_attempts > budget``, no retry loop can exhaust
        its attempts on rate-based faults alone, and degradation absorbs
        anything unrecoverable — so every run under a survivable plan
        finishes with zero escaped faults.
        """
        if rates is None:
            rates = {
                SITE_KERNEL: 0.05,
                SITE_ECC: 0.01,
                SITE_TRANSFER: 0.05,
                SITE_WORKER: 0.2,
                SITE_NODE: 0.03,
            }
        return cls(
            seed=seed,
            rates=rates,
            max_faults=budget,
            retry=RetryPolicy(max_attempts=budget + 2),
            degrade=True,
            name=f"survivable-{seed}",
        )

    # -- persistence (the replay corpus format) ----------------------------------

    def to_dict(self) -> Dict:
        return {
            "version": PLAN_FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "rates": {k: self.rates[k] for k in sorted(self.rates)},
            "scheduled": [f.to_dict() for f in self.scheduled],
            "max_faults": self.max_faults,
            "retry": self.retry.to_dict(),
            "degrade": self.degrade,
            "transfer_timeout_factor": self.transfer_timeout_factor,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "FaultPlan":
        version = doc.get("version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise FaultError(f"unsupported fault-plan version {version!r}")
        return cls(
            seed=int(doc.get("seed", 0)),
            rates={k: float(v) for k, v in doc.get("rates", {}).items()},
            scheduled=tuple(
                ScheduledFault.from_dict(f) for f in doc.get("scheduled", [])
            ),
            max_faults=doc.get("max_faults"),
            retry=RetryPolicy.from_dict(doc.get("retry", {})),
            degrade=bool(doc.get("degrade", True)),
            transfer_timeout_factor=float(doc.get("transfer_timeout_factor", 2.0)),
            name=doc.get("name", ""),
        )

    def save(self, path: str) -> None:
        """Write the plan as JSON (a replayable chaos bug report)."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
