"""The chaos harness: replay fault plans against the whole stack.

A chaos run takes one :class:`repro.faults.FaultPlan` and drives the
repo's real user-facing surfaces under it:

- **api** — :func:`repro.api.solve` on a seeded knapsack, under a
  metered strategy; the answer must match the fault-free baseline and
  pass the exact certificate audit (:mod:`repro.check`);
- **serve** — a request stream through :class:`repro.serve.SolveService`;
  every admitted request must get exactly one response, none duplicated,
  and the result cache must never hold a failed answer;
- **distributed** — for plans touching ``comm.rank``, the
  supervisor–worker solve via rank-loss recovery; the incumbent must
  match the undisturbed run;
- **cluster** — for plans touching ``cluster.group``, a sharded stream
  through :class:`repro.cluster.ClusterService` under whole-group
  fail-stops: every admitted request answered exactly once (in-flight
  work re-routed, never dropped, never double-answered) and no dead
  shard left holding a cache replica.

Every scenario also checks the injector's books: each injected fault
resolved exactly once (``injected == recovered + tolerated + escaped``)
and — for survivable plans — nothing escaped.  The pinned
:func:`builtin_corpus` is what ``make chaos`` and the CI ``chaos-smoke``
job replay; :func:`run_chaos` accepts extra plans (``--plan file.json``)
so a saved failing plan becomes a regression test.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro import obs
from repro.errors import FaultError
from repro.faults.injector import injecting
from repro.faults.plan import (
    SITE_ECC,
    SITE_GROUP,
    SITE_KERNEL,
    SITE_NODE,
    SITE_RANK,
    SITE_TRANSFER,
    SITE_WORKER,
    FaultPlan,
    RetryPolicy,
    ScheduledFault,
)


@dataclasses.dataclass
class ChaosRun:
    """One (plan, scenario) replay and everything it asserted."""

    plan: str
    scenario: str
    ok: bool
    detail: str = ""
    counts: Dict[str, int] = dataclasses.field(default_factory=dict)
    balanced: bool = True
    escaped: int = 0
    certified: Optional[bool] = None

    def to_dict(self) -> Dict:
        return {
            "plan": self.plan,
            "scenario": self.scenario,
            "ok": self.ok,
            "detail": self.detail,
            "counts": dict(self.counts),
            "balanced": self.balanced,
            "escaped": self.escaped,
            "certified": self.certified,
        }


@dataclasses.dataclass
class ChaosReport:
    """Outcome of one corpus replay."""

    runs: List[ChaosRun] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs)

    @property
    def total_injected(self) -> int:
        return sum(run.counts.get("injected", 0) for run in self.runs)

    def to_dict(self) -> Dict:
        return {
            "ok": self.ok,
            "runs": [run.to_dict() for run in self.runs],
            "total_injected": self.total_injected,
        }


def builtin_corpus(seed: int = 0) -> List[FaultPlan]:
    """The pinned replay corpus: one plan per fault family, plus mixes.

    Scheduled plans pin faults to exact occurrence indices so the CI
    smoke exercises every recovery path deterministically even on tiny
    workloads; the generated plans add seeded rate-based background
    noise.  All plans here are survivable by construction
    (``retry.max_attempts`` exceeds every budget).
    """
    retry = RetryPolicy(max_attempts=6)
    return [
        FaultPlan(
            seed=seed,
            scheduled=(
                ScheduledFault(site=SITE_KERNEL, at=3),
                ScheduledFault(site=SITE_KERNEL, at=4),
                ScheduledFault(site=SITE_KERNEL, at=11),
            ),
            retry=retry,
            name="kernel-burst",
        ),
        FaultPlan(
            seed=seed,
            scheduled=(ScheduledFault(site=SITE_ECC, at=5),),
            retry=retry,
            name="ecc-degrade",
        ),
        FaultPlan(
            seed=seed,
            rates={SITE_TRANSFER: 0.1},
            max_faults=4,
            retry=retry,
            name="transfer-flaky",
        ),
        FaultPlan(
            seed=seed,
            scheduled=(ScheduledFault(site=SITE_WORKER, at=0),),
            rates={SITE_WORKER: 0.1},
            max_faults=3,
            retry=retry,
            name="worker-crash",
        ),
        FaultPlan(
            seed=seed,
            scheduled=(ScheduledFault(site=SITE_NODE, at=1),),
            rates={SITE_NODE: 0.05},
            max_faults=3,
            retry=retry,
            name="node-kill",
        ),
        FaultPlan(
            seed=seed,
            scheduled=(ScheduledFault(site=SITE_RANK, at=2, rank=1),),
            retry=retry,
            name="rank-drop",
        ),
        FaultPlan(
            seed=seed,
            scheduled=(
                ScheduledFault(site=SITE_GROUP, at=2),
                ScheduledFault(site=SITE_GROUP, at=5),
            ),
            retry=retry,
            name="group-kill",
        ),
        FaultPlan.generate(seed, intensity="light"),
        FaultPlan.generate(seed + 1, intensity="heavy"),
        FaultPlan.survivable(seed + 2),
    ]


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def _chaos_problem(seed: int, items: int):
    from repro.problems.knapsack import generate_knapsack

    return generate_knapsack(items, seed=seed)


def _accounting(run: ChaosRun, injector) -> None:
    """Fold the injector's books into the run; flag violations.

    Every injected fault must be resolved exactly once, and nothing may
    escape: the corpus is survivable by construction, so an escaped
    fault means a recovery path dropped the ball.
    """
    run.counts = injector.counts()
    run.balanced = injector.balanced
    run.escaped = run.counts["escaped"]
    if not run.balanced:
        run.ok = False
        run.detail = (run.detail + "; " if run.detail else "") + (
            "unbalanced fault accounting: "
            f"{run.counts}"
        )
    if run.escaped:
        run.ok = False
        run.detail = (run.detail + "; " if run.detail else "") + (
            f"{run.escaped} fault(s) escaped recovery"
        )


def _api_scenario(
    plan: FaultPlan, seed: int, items: int, strategy: str = "gpu_only"
) -> ChaosRun:
    """One metered solve under the plan, audited against the baseline."""
    from repro.api import SolveOptions, solve
    from repro.check import certify_mip_result
    from repro.mip.solver import SolverOptions

    problem = _chaos_problem(seed, items)
    baseline = solve(problem, SolveOptions(strategy=strategy))
    run = ChaosRun(plan=plan.name, scenario="api", ok=True)
    try:
        with injecting(plan) as injector:
            report = solve(
                problem,
                SolveOptions(
                    strategy=strategy,
                    solver=SolverOptions(checkpoint_every=2),
                ),
            )
            _accounting(run, injector)
    except FaultError as exc:
        return ChaosRun(
            plan=plan.name, scenario="api", ok=False,
            detail=f"unrecovered {type(exc).__name__}: {exc}",
        )
    if report.status != baseline.status:
        run.ok = False
        run.detail = f"status {report.status!r} != baseline {baseline.status!r}"
        return run
    if report.x is not None and abs(report.objective - baseline.objective) > 1e-6:
        run.ok = False
        run.detail = (
            f"objective {report.objective:.9g} != "
            f"baseline {baseline.objective:.9g}"
        )
        return run
    certificate = certify_mip_result(problem, report.result)
    run.certified = certificate.ok
    if not certificate.ok:
        run.ok = False
        run.detail = "certificate audit failed: " + "; ".join(
            check.name for check in certificate.checks if not check.ok
        )
    return run


def _serve_scenario(
    plan: FaultPlan, seed: int, items: int, requests: int = 8
) -> ChaosRun:
    """A request stream through the service; no lost or duplicate answers."""
    from repro.serve.service import SolveService
    from repro.serve.workload import mip_pool

    pool = mip_pool(max(2, requests // 2), num_items=items, seed=seed)
    run = ChaosRun(plan=plan.name, scenario="serve", ok=True)
    try:
        with injecting(plan) as injector:
            service = SolveService(num_workers=2)
            ids = []
            for i in range(requests):
                ids.append(
                    service.submit(pool[i % len(pool)], at=1e-4 * i)
                )
            responses = service.close()
            _accounting(run, injector)
    except FaultError as exc:
        return ChaosRun(
            plan=plan.name, scenario="serve", ok=False,
            detail=f"unrecovered {type(exc).__name__}: {exc}",
        )
    answered = [r.request_id for r in responses]
    if sorted(answered) != sorted(ids):
        run.ok = False
        lost = set(ids) - set(answered)
        dup = len(answered) - len(set(answered))
        run.detail = f"lost {sorted(lost)}, {dup} duplicated"
        return run
    # The cache must never serve a failed answer back.
    for entry in service.cache._entries.values():
        if entry.outcome.value != "ok":
            run.ok = False
            run.detail = "result cache holds a non-ok entry"
            return run
    failed = [r for r in responses if r.outcome.value == "failed"]
    if failed and not run.escaped:
        run.ok = False
        run.detail = f"{len(failed)} failed response(s) without escaped faults"
    return run


def _distributed_scenario(plan: FaultPlan, seed: int, items: int) -> ChaosRun:
    """Supervisor–worker solve surviving rank drops; incumbent must match."""
    from repro.faults.recovery import solve_distributed_with_recovery

    problem = _chaos_problem(seed, items)
    baseline = solve_distributed_with_recovery(problem, num_workers=2)
    run = ChaosRun(plan=plan.name, scenario="distributed", ok=True)
    try:
        with injecting(plan) as injector:
            recovered = solve_distributed_with_recovery(problem, num_workers=2)
            _accounting(run, injector)
    except FaultError as exc:
        return ChaosRun(
            plan=plan.name, scenario="distributed", ok=False,
            detail=f"unrecovered {type(exc).__name__}: {exc}",
        )
    base_inc = baseline.incumbent
    rec_inc = recovered.incumbent
    if (base_inc is None) != (rec_inc is None) or (
        base_inc is not None and abs(base_inc - rec_inc) > 1e-6
    ):
        run.ok = False
        run.detail = f"incumbent {rec_inc!r} != baseline {base_inc!r}"
    return run


def _cluster_scenario(
    plan: FaultPlan, seed: int, items: int, requests: int = 8
) -> ChaosRun:
    """A sharded stream under whole-group kills; every id answered once.

    Drives a 3-group :class:`repro.cluster.ClusterService`; the front
    door consults ``cluster.group`` once per admission, so a scheduled
    kill fires at a deterministic request index.  The invariants: the
    killed groups' in-flight work is re-routed (nothing lost, nothing
    double-answered) and no dead shard still holds a cache replica.
    """
    from repro.cluster import ClusterService
    from repro.serve.workload import mip_pool

    pool = mip_pool(max(2, requests // 2), num_items=items, seed=seed)
    run = ChaosRun(plan=plan.name, scenario="cluster", ok=True)
    try:
        with injecting(plan) as injector:
            cluster = ClusterService(groups=3, num_workers=2)
            ids = []
            for i in range(requests):
                ids.append(cluster.submit(pool[i % len(pool)], at=1e-4 * i))
            responses = cluster.close()
            _accounting(run, injector)
    except FaultError as exc:
        return ChaosRun(
            plan=plan.name, scenario="cluster", ok=False,
            detail=f"unrecovered {type(exc).__name__}: {exc}",
        )
    answered = [r.request_id for r in responses]
    if sorted(answered) != sorted(ids):
        run.ok = False
        lost = set(ids) - set(answered)
        dup = len(answered) - len(set(answered))
        run.detail = f"lost {sorted(lost)}, {dup} duplicated"
        return run
    if plan.touches(SITE_GROUP) and not cluster.metrics.count(
        "cluster.group_kills"
    ):
        run.ok = False
        run.detail = "plan touches cluster.group but no group was killed"
        return run
    # A dead shard must never satisfy a later lookup: the only replicas
    # left standing belong to groups that are still alive.
    replicas = set(cluster.cache.stats()["replicas"])
    if replicas != set(cluster.group_ids):
        run.ok = False
        run.detail = (
            f"cache replicas {sorted(replicas)} != "
            f"live groups {cluster.group_ids}"
        )
    return run


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------


def chaos_overhead_payload(seed: int = 0, items: int = 8) -> Dict:
    """Benchmark artifact: simulated cost of surviving each fault plan.

    One clean metered solve sets the baseline makespan; each
    device-site plan from the builtin corpus then re-runs the same
    solve under injection, and the row records how much simulated time
    the retries, re-uploads, and checkpoint restarts added.  Fully
    deterministic (seeded plans, simulated clock), so the artifact is
    byte-stable and CI can gate on it via ``bench-smoke --check``.
    """
    from repro.api import SolveOptions, solve
    from repro.mip.solver import SolverOptions
    from repro.obs.bench import bench_payload

    problem = _chaos_problem(seed, items)
    baseline = solve(problem, SolveOptions(strategy="gpu_only"))
    base_span = baseline.makespan_seconds
    device_sites = (SITE_KERNEL, SITE_ECC, SITE_TRANSFER, SITE_NODE)
    rows: List[Dict] = []
    worst = 1.0
    for plan in builtin_corpus(seed):
        if not any(plan.touches(site) for site in device_sites):
            continue
        with injecting(plan) as injector:
            report = solve(
                problem,
                SolveOptions(
                    strategy="gpu_only",
                    solver=SolverOptions(checkpoint_every=2),
                ),
            )
            counts = injector.counts()
        overhead = (
            report.makespan_seconds / base_span if base_span > 0 else 1.0
        )
        worst = max(worst, overhead)
        rows.append(
            {
                "plan": plan.name,
                "status": report.status,
                "injected": counts.get("injected", 0),
                "recovered": counts.get("recovered", 0),
                "tolerated": counts.get("tolerated", 0),
                "makespan_seconds": report.makespan_seconds,
                "overhead_ratio": overhead,
            }
        )
    return bench_payload(
        "chaos_overhead",
        rows,
        params={"seed": seed, "items": items, "strategy": "gpu_only"},
        summary={
            "baseline_makespan_seconds": base_span,
            "max_overhead_ratio": worst,
            "plans": len(rows),
        },
    )


def run_chaos(
    plans: Optional[List[FaultPlan]] = None,
    seed: int = 0,
    items: int = 8,
    requests: int = 8,
    serve: bool = True,
    log_fn=None,
) -> ChaosReport:
    """Replay every plan against each scenario its sites can reach.

    Plans touching only serve sites skip the api scenario and vice
    versa; plans touching ``comm.rank`` run the distributed scenario
    (the only surface with simulated ranks).  ``log_fn`` (e.g.
    ``print``) gets one progress line per run.
    """
    plans = list(builtin_corpus(seed)) if plans is None else list(plans)
    report = ChaosReport()
    for plan in plans:
        scenarios = []
        device_sites = (SITE_KERNEL, SITE_ECC, SITE_TRANSFER, SITE_NODE)
        if any(plan.touches(site) for site in device_sites) or plan.empty:
            scenarios.append(lambda p: _api_scenario(p, seed, items))
        if serve and (
            plan.touches(SITE_WORKER)
            or any(plan.touches(site) for site in device_sites)
        ):
            scenarios.append(
                lambda p: _serve_scenario(p, seed, items, requests=requests)
            )
        if plan.touches(SITE_RANK):
            scenarios.append(lambda p: _distributed_scenario(p, seed, items))
        if plan.touches(SITE_GROUP):
            scenarios.append(
                lambda p: _cluster_scenario(p, seed, items, requests=requests)
            )
        for scenario in scenarios:
            run = scenario(plan)
            report.runs.append(run)
            obs.event(
                "chaos.run", category="fault",
                plan=run.plan, scenario=run.scenario, ok=run.ok,
            )
            if log_fn is not None:
                mark = "ok " if run.ok else "FAIL"
                counts = run.counts or {}
                log_fn(
                    f"[{mark}] {run.plan:<16} {run.scenario:<12} "
                    f"injected={counts.get('injected', 0)} "
                    f"recovered={counts.get('recovered', 0)} "
                    f"tolerated={counts.get('tolerated', 0)} "
                    f"escaped={counts.get('escaped', 0)}"
                    + (f"  {run.detail}" if run.detail else "")
                )
    return report
