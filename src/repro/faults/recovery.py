"""Checkpoint-based recovery drivers for injected crashes.

Two restart loops, both built on the repo's consistent-snapshot
machinery (paper §2.1/§2.3 — the set of leaves/tasks that preserves the
optimum):

- :func:`solve_with_checkpoint_resume` — sequential branch-and-bound
  under ``mip.node`` kills: the solver checkpoints every N nodes
  (:class:`repro.mip.snapshot.SearchSnapshot` via
  ``SolverOptions.checkpoint_fn``); on a :class:`SolverCrashError` the
  driver resumes from the latest snapshot merged with the untouched
  worklist, so the final incumbent and dual bound match an
  uninterrupted run exactly;
- :func:`solve_distributed_with_recovery` — the supervisor–worker run
  under ``comm.rank`` drops: the supervisor streams snapshots to a
  ``checkpoint_sink`` that outlives the crashed SimMPI run; on a
  :class:`RankLostError` the driver restarts from the latest snapshot's
  queued ∪ outstanding task set with its incumbent pre-seeded.

Both loops resolve the crash faults they mask as *recovered*, keeping
the injector's ``injected == recovered + tolerated`` invariant.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.comm.network import SUMMIT_FAT_TREE, NetworkSpec
from repro.comm.supervisor import (
    Snapshot,
    SupervisorConfig,
    SupervisorResult,
    Task,
    _merge_incumbent,
    run_supervisor_worker,
)
from repro.device.spec import DeviceSpec, V100
from repro.errors import FaultError, RankLostError, SolverCrashError
from repro.faults.injector import active
from repro.faults.plan import SITE_NODE, SITE_RANK
from repro.lp.simplex import SimplexOptions
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPResult, MIPStatus
from repro.mip.snapshot import SearchSnapshot
from repro.mip.solver import BranchAndBoundSolver, ExecutionEngine, SolverOptions
from repro import obs

#: Default node interval between snapshots when the caller sets none.
DEFAULT_CHECKPOINT_EVERY = 8


def _restrict(problem: MIPProblem, lb: np.ndarray, ub: np.ndarray) -> MIPProblem:
    """The problem confined to one leaf's bound box (a sub-MIP)."""
    return MIPProblem(
        c=problem.c,
        integer=problem.integer,
        a_ub=problem.a_ub,
        b_ub=problem.b_ub,
        a_eq=problem.a_eq,
        b_eq=problem.b_eq,
        lb=lb,
        ub=ub,
        name=problem.name,
    )


@dataclasses.dataclass
class ResumeStats:
    """What the checkpoint-resume driver did beyond solving."""

    restarts: int = 0
    checkpoints: int = 0
    #: Simulated engine seconds across all attempts (wasted work included).
    makespan_seconds: float = 0.0


def solve_with_checkpoint_resume(
    problem: MIPProblem,
    solver_options: Optional[SolverOptions] = None,
    engine: Optional[ExecutionEngine] = None,
    checkpoint_every: int = 0,
    max_restarts: int = 10_000,
) -> Tuple[MIPResult, ResumeStats]:
    """Run branch-and-bound to completion despite ``mip.node`` kills.

    The worklist starts as the whole problem; each crash replaces it
    with the latest snapshot's leaves (plus any leaves not yet started)
    and the search resumes.  Non-crash :class:`FaultError`\\ s (kernel,
    ECC, transfer) propagate to the caller — they are the degradation
    path's concern, not this driver's.
    """
    solver_options = solver_options or SolverOptions()
    every = checkpoint_every or solver_options.checkpoint_every or DEFAULT_CHECKPOINT_EVERY
    injector = active()

    worklist: List[Tuple[np.ndarray, np.ndarray]] = [
        (problem.lb.copy(), problem.ub.copy())
    ]
    best_obj = -np.inf
    best_x: Optional[np.ndarray] = None
    final_status: Optional[MIPStatus] = None
    nodes = 0
    lp_iterations = 0
    stats = ResumeStats()

    while worklist:
        lb, ub = worklist[0]
        rest = worklist[1:]
        sub = _restrict(problem, lb, ub)

        latest: List[Optional[SearchSnapshot]] = [None]

        def checkpoint_fn(snapshot: SearchSnapshot) -> None:
            latest[0] = snapshot
            stats.checkpoints += 1

        attempt_options = dataclasses.replace(
            solver_options, checkpoint_every=every, checkpoint_fn=checkpoint_fn
        )
        solver = BranchAndBoundSolver(sub, attempt_options, engine=engine)
        elapsed_before = solver.engine.elapsed_seconds
        try:
            result = solver.solve()
        except SolverCrashError as exc:
            stats.restarts += 1
            if stats.restarts > max_restarts:
                raise FaultError(
                    f"gave up after {max_restarts} crash restarts",
                    fault_count=exc.fault_count,
                ) from exc
            # Wasted work is real work: it happened before the crash.
            nodes += solver.stats.nodes_processed
            lp_iterations += solver.stats.lp_iterations
            stats.makespan_seconds += solver.engine.elapsed_seconds - elapsed_before
            if injector is not None:
                injector.resolve_recovered(exc.fault_count, site=SITE_NODE)
            obs.event(
                "fault.resume", category="fault",
                site=SITE_NODE, restarts=stats.restarts,
            )
            snapshot = latest[0]
            if snapshot is not None:
                best_obj = max(best_obj, snapshot.incumbent_objective)
                if (
                    snapshot.incumbent_x is not None
                    and snapshot.incumbent_objective >= best_obj
                ):
                    best_x = snapshot.incumbent_x
                worklist = list(snapshot.leaves) + rest
            # No snapshot yet: re-run the same leaf from scratch.
            continue

        nodes += solver.stats.nodes_processed
        lp_iterations += solver.stats.lp_iterations
        stats.makespan_seconds += solver.engine.elapsed_seconds - elapsed_before
        if result.status is MIPStatus.OPTIMAL and result.objective > best_obj:
            best_obj = result.objective
            best_x = result.x
        elif result.status not in (MIPStatus.OPTIMAL, MIPStatus.INFEASIBLE):
            final_status = result.status
        worklist = rest

    if final_status is None:
        final_status = (
            MIPStatus.OPTIMAL if best_x is not None else MIPStatus.INFEASIBLE
        )
    out = MIPResult(
        status=final_status,
        objective=best_obj if best_x is not None else np.nan,
        x=best_x,
        best_bound=best_obj if best_x is not None else -np.inf,
    )
    out.stats.nodes_processed = nodes
    out.stats.lp_iterations = lp_iterations
    return out, stats


# ---------------------------------------------------------------------------
# Distributed rank-loss recovery
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class DistributedRecoveryResult:
    """Outcome of a rank-loss-tolerant supervisor–worker run."""

    incumbent: Optional[float]
    evaluations: int
    makespan: float
    restarts: int
    #: The final (successful) run's full result.
    final_run: SupervisorResult


def run_supervisor_with_recovery(
    roots: List[Task],
    evaluate: Callable,
    config: SupervisorConfig,
    network: NetworkSpec = SUMMIT_FAT_TREE,
    max_restarts: int = 100,
) -> DistributedRecoveryResult:
    """Run the supervisor–worker engine to completion despite rank drops.

    On each :class:`RankLostError` the run restarts from the latest
    snapshot delivered to the checkpoint sink (queued ∪ outstanding
    tasks + incumbent); ``evaluate`` is wrapped so the restarted run
    prunes against the pre-crash incumbent from its first node.
    """
    injector = active()
    latest: List[Optional[Snapshot]] = [None]
    user_sink = config.checkpoint_sink

    def sink(snapshot: Snapshot) -> None:
        latest[0] = snapshot
        if user_sink is not None:
            user_sink(snapshot)

    every = config.checkpoint_every or 4
    config = dataclasses.replace(
        config, checkpoint_every=every, checkpoint_sink=sink
    )

    current_roots = list(roots)
    prior_incumbent: Optional[float] = None
    restarts = 0

    while True:
        prior = prior_incumbent

        def wrapped(payload, incumbent, _prior=prior):
            return evaluate(payload, _merge_incumbent(incumbent, _prior))

        try:
            run = run_supervisor_worker(current_roots, wrapped, config, network=network)
        except RankLostError as exc:
            restarts += 1
            if restarts > max_restarts:
                raise FaultError(
                    f"gave up after {max_restarts} rank-loss restarts",
                    fault_count=exc.fault_count,
                ) from exc
            if injector is not None:
                injector.resolve_recovered(exc.fault_count, site=SITE_RANK)
            obs.event(
                "fault.resume", category="fault",
                site=SITE_RANK, rank=exc.rank, restarts=restarts,
            )
            snapshot = latest[0]
            if snapshot is not None:
                nbytes = roots[0].nbytes if roots else 256
                current_roots = [
                    Task(payload=payload, nbytes=nbytes)
                    for payload in snapshot.tasks
                ]
                prior_incumbent = _merge_incumbent(prior_incumbent, snapshot.incumbent)
            continue

        incumbent = _merge_incumbent(run.incumbent, prior_incumbent)
        return DistributedRecoveryResult(
            incumbent=incumbent,
            evaluations=run.evaluations,
            makespan=run.makespan,
            restarts=restarts,
            final_run=run,
        )


def solve_distributed_with_recovery(
    problem: MIPProblem,
    num_workers: int = 2,
    spec: DeviceSpec = V100,
    network: NetworkSpec = SUMMIT_FAT_TREE,
    checkpoint_every: int = 4,
    simplex_options: Optional[SimplexOptions] = None,
    max_evaluations: int = 200_000,
) -> DistributedRecoveryResult:
    """Distributed MIP solve that survives simulated rank drops.

    The rank-loss analogue of :func:`repro.strategies.distributed.
    solve_distributed`, wrapped in :func:`run_supervisor_with_recovery`.
    """
    from repro.strategies.distributed import _make_evaluate

    options = simplex_options or SimplexOptions()
    evaluate = _make_evaluate(problem, spec, options)
    root = Task(
        payload=(problem.lb.copy(), problem.ub.copy(), 0),
        priority=0.0,
        nbytes=2 * problem.n * 8 + 256,
    )
    config = SupervisorConfig(
        num_workers=num_workers,
        checkpoint_every=checkpoint_every,
        max_evaluations=max_evaluations,
    )
    return run_supervisor_with_recovery([root], evaluate, config, network=network)
