"""Permutation flow-shop scheduling (the GPU B&B workload of §2.3).

Chakroun et al. [5], Vu & Derbel [36] and Gmys et al. [13] — the GPU
branch-and-bound systems the paper surveys — all evaluate on permutation
flow-shop.  ``FlowShop`` provides the makespan objective and the classic
single-machine lower bound used to prune the permutation tree, plugging
directly into :mod:`repro.mip.ivm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ProblemFormatError


@dataclass
class FlowShop:
    """A permutation flow-shop: ``times[machine, job]`` processing times."""

    times: np.ndarray

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=np.float64)
        if self.times.ndim != 2 or np.any(self.times < 0):
            raise ProblemFormatError("times must be a non-negative 2-D array")

    @property
    def num_machines(self) -> int:
        """Machines in the line."""
        return self.times.shape[0]

    @property
    def num_jobs(self) -> int:
        """Jobs to sequence."""
        return self.times.shape[1]

    def makespan(self, permutation: Sequence[int]) -> float:
        """Completion time of the last job on the last machine."""
        m = self.num_machines
        completion = np.zeros(m)
        for job in permutation:
            completion[0] += self.times[0, job]
            for k in range(1, m):
                completion[k] = max(completion[k], completion[k - 1]) + self.times[k, job]
        return float(completion[-1])

    def prefix_completion(self, prefix: Sequence[int]) -> np.ndarray:
        """Per-machine completion times after scheduling ``prefix``."""
        m = self.num_machines
        completion = np.zeros(m)
        for job in prefix:
            completion[0] += self.times[0, job]
            for k in range(1, m):
                completion[k] = max(completion[k], completion[k - 1]) + self.times[k, job]
        return completion

    def lower_bound(self, prefix: Sequence[int]) -> float:
        """One-machine bound for the subtree below ``prefix``.

        For each machine: prefix completion + total remaining work on
        that machine + the smallest remaining tail through the later
        machines.  Standard LB1 of the flow-shop B&B literature.
        """
        remaining = np.setdiff1d(
            np.arange(self.num_jobs), np.asarray(prefix, dtype=np.int64)
        )
        completion = self.prefix_completion(prefix)
        if remaining.size == 0:
            return float(completion[-1])
        m = self.num_machines
        best = 0.0
        for k in range(m):
            work = float(self.times[k, remaining].sum())
            if k + 1 < m:
                tails = self.times[k + 1 :, remaining].sum(axis=0)
                tail = float(tails.min())
            else:
                tail = 0.0
            best = max(best, completion[k] + work + tail)
        return best


def generate_flowshop(num_jobs: int, num_machines: int, seed: int = 0) -> FlowShop:
    """Taillard-style random instance: integer times uniform in [1, 99]."""
    if num_jobs < 1 or num_machines < 1:
        raise ProblemFormatError("flow-shop needs >= 1 job and >= 1 machine")
    rng = np.random.default_rng(seed)
    times = rng.integers(1, 100, size=(num_machines, num_jobs)).astype(np.float64)
    return FlowShop(times=times)
