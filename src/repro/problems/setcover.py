"""Set covering instances.

Minimize the total cost of chosen sets so every element is covered.
Expressed in the library's maximization convention as maximizing the
negated cost; covering rows are ``−Σ_{j covers e} x_j ≤ −1``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem


def generate_set_cover(
    num_elements: int,
    num_sets: int,
    density: float = 0.3,
    seed: int = 0,
) -> MIPProblem:
    """Random set-cover with guaranteed feasibility.

    Each (element, set) membership appears with probability ``density``;
    every element is forced into at least two sets so the instance is
    feasible and non-trivial.  Costs are uniform in [1, 20].
    """
    if num_elements < 1 or num_sets < 2:
        raise ProblemFormatError("set cover needs >=1 element and >=2 sets")
    rng = np.random.default_rng(seed)
    membership = rng.random((num_elements, num_sets)) < density
    for e in range(num_elements):
        covered = np.nonzero(membership[e])[0]
        while covered.size < 2:
            membership[e, rng.integers(0, num_sets)] = True
            covered = np.nonzero(membership[e])[0]
    costs = rng.integers(1, 21, size=num_sets).astype(np.float64)
    # Coverage: sum_{j in S_e} x_j >= 1  ->  -sum x_j <= -1.
    a_ub = -membership.astype(np.float64)
    b_ub = -np.ones(num_elements)
    return MIPProblem(
        c=-costs,  # maximize negated cost == minimize cost
        integer=np.ones(num_sets, dtype=bool),
        a_ub=a_ub,
        b_ub=b_ub,
        lb=np.zeros(num_sets),
        ub=np.ones(num_sets),
        name=f"setcover-{num_elements}x{num_sets}-{seed}",
    )
