"""Assignment and generalized assignment instances.

The pure assignment problem has an integral LP relaxation (its matrix
is totally unimodular), so it exercises the "solved at the root" path;
the *generalized* assignment problem adds agent capacities and is
NP-hard, giving branch-and-bound real work.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem


def generate_assignment(size: int, seed: int = 0) -> MIPProblem:
    """size×size assignment: maximize total profit, one job per agent.

    Variables x[a, j] flattened row-major.  Equality rows force one job
    per agent and one agent per job.
    """
    if size < 1:
        raise ProblemFormatError("assignment needs size >= 1")
    rng = np.random.default_rng(seed)
    profit = rng.integers(1, 50, size=(size, size)).astype(np.float64)
    n = size * size
    a_eq = np.zeros((2 * size, n))
    for a in range(size):
        a_eq[a, a * size : (a + 1) * size] = 1.0  # agent a does one job
    for j in range(size):
        a_eq[size + j, j::size] = 1.0  # job j done once
    return MIPProblem(
        c=profit.ravel(),
        integer=np.ones(n, dtype=bool),
        a_eq=a_eq,
        b_eq=np.ones(2 * size),
        lb=np.zeros(n),
        ub=np.ones(n),
        name=f"assignment-{size}-{seed}",
    )


def generate_generalized_assignment(
    num_agents: int, num_jobs: int, seed: int = 0, tightness: float = 0.8
) -> MIPProblem:
    """Generalized assignment: jobs to capacity-limited agents.

    Every job must be assigned to exactly one agent (equality rows);
    each agent's total resource usage is capped (inequality rows).
    ``tightness`` scales capacities (smaller → harder).
    """
    if num_agents < 2 or num_jobs < 2:
        raise ProblemFormatError("GAP needs >= 2 agents and >= 2 jobs")
    rng = np.random.default_rng(seed)
    profit = rng.integers(5, 30, size=(num_agents, num_jobs)).astype(np.float64)
    usage = rng.integers(1, 20, size=(num_agents, num_jobs)).astype(np.float64)
    # Plant a feasible assignment and size capacities to cover it, so the
    # instance is feasible by construction; tightness adds headroom.
    planted = rng.integers(0, num_agents, size=num_jobs)
    needed = np.zeros(num_agents)
    for j, a in enumerate(planted):
        needed[a] += usage[a, j]
    capacity = np.ceil(needed + tightness * usage.mean() * num_jobs / num_agents)

    n = num_agents * num_jobs

    def var(a: int, j: int) -> int:
        return a * num_jobs + j

    a_eq = np.zeros((num_jobs, n))
    for j in range(num_jobs):
        for a in range(num_agents):
            a_eq[j, var(a, j)] = 1.0
    a_ub = np.zeros((num_agents, n))
    for a in range(num_agents):
        a_ub[a, a * num_jobs : (a + 1) * num_jobs] = usage[a]
    return MIPProblem(
        c=profit.ravel(),
        integer=np.ones(n, dtype=bool),
        a_ub=a_ub,
        b_ub=capacity.astype(np.float64),
        a_eq=a_eq,
        b_eq=np.ones(num_jobs),
        lb=np.zeros(n),
        ub=np.ones(n),
        name=f"gap-{num_agents}x{num_jobs}-{seed}",
    )
