"""MPS file reader/writer for :class:`MIPProblem`.

Free-format MPS with the standard sections (NAME, OBJSENSE, ROWS,
COLUMNS with INTORG/INTEND markers, RHS, BOUNDS, ENDATA).  This is the
interchange format every MIPLIB instance ships in; supporting it makes
the library a drop-in consumer of real instance collections.
"""

from __future__ import annotations

from typing import Dict, List, TextIO, Union

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem


def write_mps(problem: MIPProblem, target: Union[str, TextIO]) -> None:
    """Serialize a problem to MPS (maximization via OBJSENSE MAX)."""
    own = isinstance(target, str)
    out = open(target, "w") if own else target
    try:
        _write(problem, out)
    finally:
        if own:
            out.close()


def _write(problem: MIPProblem, out: TextIO) -> None:
    out.write(f"NAME          {problem.name}\n")
    out.write("OBJSENSE\n    MAX\n")
    out.write("ROWS\n")
    out.write(" N  OBJ\n")
    num_ub = 0 if problem.a_ub is None else problem.a_ub.shape[0]
    num_eq = 0 if problem.a_eq is None else problem.a_eq.shape[0]
    for i in range(num_ub):
        out.write(f" L  R{i}\n")
    for i in range(num_eq):
        out.write(f" E  E{i}\n")

    out.write("COLUMNS\n")
    marker_open = False
    for j in range(problem.n):
        is_int = bool(problem.integer[j])
        if is_int and not marker_open:
            out.write("    MARKER                 'MARKER'                 'INTORG'\n")
            marker_open = True
        elif not is_int and marker_open:
            out.write("    MARKER                 'MARKER'                 'INTEND'\n")
            marker_open = False
        name = f"X{j}"
        entries: List[str] = []
        if problem.c[j] != 0.0:
            entries.append(f"OBJ {float(problem.c[j])!r}")
        for i in range(num_ub):
            v = problem.a_ub[i, j]
            if v != 0.0:
                entries.append(f"R{i} {float(v)!r}")
        for i in range(num_eq):
            v = problem.a_eq[i, j]
            if v != 0.0:
                entries.append(f"E{i} {float(v)!r}")
        if not entries:
            entries.append("OBJ 0.0")
        for entry in entries:
            row, value = entry.split(" ", 1)
            out.write(f"    {name:<10}{row:<10}{value}\n")
    if marker_open:
        out.write("    MARKER                 'MARKER'                 'INTEND'\n")

    out.write("RHS\n")
    for i in range(num_ub):
        if problem.b_ub[i] != 0.0:
            out.write(f"    RHS       R{i:<9}{float(problem.b_ub[i])!r}\n")
    for i in range(num_eq):
        if problem.b_eq[i] != 0.0:
            out.write(f"    RHS       E{i:<9}{float(problem.b_eq[i])!r}\n")

    out.write("BOUNDS\n")
    for j in range(problem.n):
        name = f"X{j}"
        lo, hi = problem.lb[j], problem.ub[j]
        # The bound grammar has no spelling for lb=+inf / ub=-inf; writing
        # such a box would silently round-trip as a different problem.
        if lo == np.inf or hi == -np.inf:
            raise ProblemFormatError(
                f"variable {name} has unrepresentable bounds "
                f"[{lo}, {hi}]: MPS cannot express lb=+inf or ub=-inf"
            )
        if np.isfinite(lo) and np.isfinite(hi) and lo == hi:
            out.write(f" FX BND       {name:<10}{float(lo)!r}\n")
            continue
        if not np.isfinite(lo):
            out.write(f" MI BND       {name}\n")
        elif lo != 0.0:
            out.write(f" LO BND       {name:<10}{float(lo)!r}\n")
        if np.isfinite(hi):
            out.write(f" UP BND       {name:<10}{float(hi)!r}\n")
    out.write("ENDATA\n")


def read_mps(source: Union[str, TextIO]) -> MIPProblem:
    """Parse a free-format MPS file into a :class:`MIPProblem`."""
    own = isinstance(source, str)
    handle = open(source) if own else source
    try:
        return _read(handle)
    finally:
        if own:
            handle.close()


def _read(handle: TextIO) -> MIPProblem:
    name = "mps"
    maximize = False
    section = None
    row_kinds: Dict[str, str] = {}
    row_order_l: List[str] = []
    row_order_e: List[str] = []
    row_order_g: List[str] = []
    obj_row = None
    col_names: List[str] = []
    col_index: Dict[str, int] = {}
    col_integer: List[bool] = []
    entries: List = []  # (col, row, value)
    rhs: Dict[str, float] = {}
    bounds: List = []  # (kind, col, value or None)
    in_integer_block = False
    expect_objsense_value = False

    for raw in handle:
        line = raw.rstrip("\n")
        if not line.strip() or line.lstrip().startswith("*"):
            continue
        if not line[0].isspace():
            tokens = line.split()
            keyword = tokens[0].upper()
            if keyword == "NAME":
                name = tokens[1] if len(tokens) > 1 else "mps"
                section = "NAME"
            elif keyword in (
                "OBJSENSE",
                "ROWS",
                "COLUMNS",
                "RHS",
                "RANGES",
                "BOUNDS",
                "ENDATA",
            ):
                section = keyword
                expect_objsense_value = keyword == "OBJSENSE"
                if len(tokens) > 1 and keyword == "OBJSENSE":
                    maximize = tokens[1].upper().startswith("MAX")
                    expect_objsense_value = False
                if keyword == "ENDATA":
                    break
            else:
                raise ProblemFormatError(f"unknown MPS section {keyword!r}")
            continue

        tokens = line.split()
        if expect_objsense_value:
            maximize = tokens[0].upper().startswith("MAX")
            expect_objsense_value = False
            continue
        if section == "ROWS":
            kind, row_name = tokens[0].upper(), tokens[1]
            if kind == "N":
                if obj_row is None:
                    obj_row = row_name
            elif kind == "L":
                row_kinds[row_name] = "L"
                row_order_l.append(row_name)
            elif kind == "G":
                row_kinds[row_name] = "G"
                row_order_g.append(row_name)
            elif kind == "E":
                row_kinds[row_name] = "E"
                row_order_e.append(row_name)
            else:
                raise ProblemFormatError(f"unknown row kind {kind!r}")
        elif section == "COLUMNS":
            if len(tokens) >= 3 and tokens[1].strip("'") == "MARKER":
                marker = tokens[-1].strip("'").upper()
                in_integer_block = marker == "INTORG"
                continue
            col = tokens[0]
            if col not in col_index:
                col_index[col] = len(col_names)
                col_names.append(col)
                col_integer.append(in_integer_block)
            pairs = tokens[1:]
            if len(pairs) % 2:
                raise ProblemFormatError(f"odd COLUMNS record: {line!r}")
            for k in range(0, len(pairs), 2):
                entries.append((col, pairs[k], float(pairs[k + 1])))
        elif section == "RHS":
            pairs = tokens[1:]
            if len(pairs) % 2:
                raise ProblemFormatError(f"odd RHS record: {line!r}")
            for k in range(0, len(pairs), 2):
                rhs[pairs[k]] = float(pairs[k + 1])
        elif section == "BOUNDS":
            kind = tokens[0].upper()
            col = tokens[2]
            value = float(tokens[3]) if len(tokens) > 3 else None
            bounds.append((kind, col, value))
        elif section == "RANGES":
            raise ProblemFormatError("RANGES section is not supported")

    n = len(col_names)
    if n == 0:
        raise ProblemFormatError("MPS file defines no columns")

    # G-rows become negated L-rows.
    ub_rows = row_order_l + row_order_g
    num_ub = len(ub_rows)
    num_eq = len(row_order_e)
    ub_index = {r: i for i, r in enumerate(ub_rows)}
    eq_index = {r: i for i, r in enumerate(row_order_e)}

    c = np.zeros(n)
    a_ub = np.zeros((num_ub, n)) if num_ub else None
    a_eq = np.zeros((num_eq, n)) if num_eq else None
    for col, row, value in entries:
        j = col_index[col]
        if row == obj_row:
            c[j] = value
        elif row in ub_index:
            sign = -1.0 if row_kinds[row] == "G" else 1.0
            a_ub[ub_index[row], j] = sign * value
        elif row in eq_index:
            a_eq[eq_index[row], j] = value
        else:
            raise ProblemFormatError(f"entry references unknown row {row!r}")

    b_ub = np.zeros(num_ub) if num_ub else None
    for row, i in ub_index.items():
        sign = -1.0 if row_kinds[row] == "G" else 1.0
        b_ub[i] = sign * rhs.get(row, 0.0)
    b_eq = np.zeros(num_eq) if num_eq else None
    for row, i in eq_index.items():
        b_eq[i] = rhs.get(row, 0.0)

    lb = np.zeros(n)
    ub = np.full(n, np.inf)
    for kind, col, value in bounds:
        j = col_index[col]
        if kind == "UP":
            ub[j] = value
        elif kind == "LO":
            lb[j] = value
        elif kind == "FX":
            lb[j] = ub[j] = value
        elif kind == "MI":
            lb[j] = -np.inf
        elif kind == "BV":
            lb[j], ub[j] = 0.0, 1.0
        elif kind == "PL":
            ub[j] = np.inf
        else:
            raise ProblemFormatError(f"unsupported bound kind {kind!r}")

    if not maximize:
        c = -c  # library convention is maximization

    return MIPProblem(
        c=c,
        integer=np.array(col_integer, dtype=bool),
        a_ub=a_ub,
        b_ub=b_ub,
        a_eq=a_eq,
        b_eq=b_eq,
        lb=lb,
        ub=ub,
        name=name,
    )
