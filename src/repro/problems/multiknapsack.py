"""Multidimensional (multi-constraint) knapsack instances.

The m-dimensional knapsack keeps the single-knapsack's simple structure
but its LP relaxation has up to m fractional variables — so branching
rules and cuts actually matter, unlike the 1-row case where at most one
variable is fractional at any vertex.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem


def generate_multiknapsack(
    num_items: int,
    num_constraints: int,
    seed: int = 0,
    capacity_ratio: float = 0.5,
) -> MIPProblem:
    """Random m-dimensional 0/1 knapsack.

    Weights uniform in [1, 100) per dimension; each capacity is
    ``capacity_ratio`` of its dimension's total weight; values weakly
    correlated with the average weight (harder than uncorrelated).
    """
    if num_items < 1 or num_constraints < 1:
        raise ProblemFormatError("need >= 1 item and >= 1 constraint")
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 100, size=(num_constraints, num_items)).astype(
        np.float64
    )
    capacities = np.floor(capacity_ratio * weights.sum(axis=1))
    values = weights.mean(axis=0) + rng.integers(-10, 11, size=num_items)
    values = np.maximum(values, 1.0)
    return MIPProblem(
        c=values,
        integer=np.ones(num_items, dtype=bool),
        a_ub=weights,
        b_ub=capacities,
        lb=np.zeros(num_items),
        ub=np.ones(num_items),
        name=f"mkp-{num_items}x{num_constraints}-{seed}",
    )
