"""Random MIPs with planted feasibility and controllable density.

The §5.4 experiments sweep matrix density from nearly-empty to fully
dense; these generators plant a feasible mixed-integer point so every
instance is feasible by construction, and they bound all variables so
the standard-form matrix is tree-constant (the §5.3 reuse property).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem


def generate_random_mip(
    num_vars: int,
    num_rows: int,
    seed: int = 0,
    density: float = 1.0,
    integer_fraction: float = 0.7,
    bound: float = 10.0,
) -> MIPProblem:
    """Random feasible maximization MIP.

    A random integer point ``x0`` inside the bound box is planted; each
    ≤-row's rhs is set to ``row @ x0 + slack`` so ``x0`` is feasible.
    ``density`` thins the constraint matrix; ``integer_fraction`` sets
    the share of integer variables (the rest are continuous — a true
    mixed program).
    """
    if num_vars < 1 or num_rows < 1:
        raise ProblemFormatError("random MIP needs >= 1 var and >= 1 row")
    if not 0.0 < density <= 1.0:
        raise ProblemFormatError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((num_rows, num_vars))
    if density < 1.0:
        mask = rng.random((num_rows, num_vars)) < density
        # Keep at least one entry per row so no row is empty.
        for i in range(num_rows):
            if not mask[i].any():
                mask[i, rng.integers(0, num_vars)] = True
        a = a * mask

    integer = rng.random(num_vars) < integer_fraction
    if not integer.any():
        integer[0] = True

    lb = np.zeros(num_vars)
    ub = np.full(num_vars, float(bound))
    x0 = rng.integers(0, int(bound) + 1, size=num_vars).astype(np.float64)
    slack = rng.random(num_rows) * 2.0 + 0.5
    b = a @ x0 + slack

    c = rng.standard_normal(num_vars)
    return MIPProblem(
        c=c,
        integer=integer,
        a_ub=a,
        b_ub=b,
        lb=lb,
        ub=ub,
        name=f"random-{num_vars}x{num_rows}-d{density:g}-{seed}",
    )
