"""0/1 knapsack instances and an exact dynamic-programming oracle.

The knapsack problem is the first GPU branch-and-bound target the paper
cites ([19], Lalami et al.); it is also the canonical small-matrix LP
relaxation for the §5.5 batched-solve experiments.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem


def generate_knapsack(
    num_items: int,
    seed: int = 0,
    correlation: str = "uncorrelated",
    capacity_ratio: float = 0.5,
) -> MIPProblem:
    """Random 0/1 knapsack: maximize value within one weight budget.

    ``correlation`` controls value/weight coupling ("uncorrelated",
    "weak", "strong" — strong correlation makes instances hard);
    capacity is ``capacity_ratio`` of the total weight.
    """
    if num_items < 1:
        raise ProblemFormatError("knapsack needs at least 1 item")
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 100, size=num_items).astype(np.float64)
    if correlation == "uncorrelated":
        values = rng.integers(1, 100, size=num_items).astype(np.float64)
    elif correlation == "weak":
        values = weights + rng.integers(-10, 11, size=num_items)
        values = np.maximum(values, 1.0)
    elif correlation == "strong":
        values = weights + 10.0
    else:
        raise ProblemFormatError(f"unknown correlation {correlation!r}")
    capacity = float(np.floor(capacity_ratio * weights.sum()))
    return MIPProblem(
        c=values,
        integer=np.ones(num_items, dtype=bool),
        a_ub=weights[None, :],
        b_ub=np.array([capacity]),
        lb=np.zeros(num_items),
        ub=np.ones(num_items),
        name=f"knapsack-{num_items}-{seed}-{correlation}",
    )


def knapsack_dp_optimal(problem: MIPProblem) -> Tuple[float, np.ndarray]:
    """Exact optimum by dynamic programming over integer weights.

    Oracle for tests/benchmarks; requires a single ≤-row with integer
    coefficients (the shape :func:`generate_knapsack` produces).
    """
    if problem.a_ub is None or problem.a_ub.shape[0] != 1:
        raise ProblemFormatError("DP oracle needs exactly one knapsack row")
    weights = problem.a_ub[0]
    if np.any(np.abs(weights - np.round(weights)) > 1e-9):
        raise ProblemFormatError("DP oracle needs integer weights")
    weights = np.round(weights).astype(np.int64)
    capacity = int(np.floor(problem.b_ub[0] + 1e-9))
    values = problem.c
    n = problem.n

    table = np.zeros(capacity + 1)
    keep = np.zeros((n, capacity + 1), dtype=bool)
    for i in range(n):
        w, v = int(weights[i]), float(values[i])
        if w <= capacity:
            candidate = table[: capacity - w + 1] + v
            improved = candidate > table[w:]
            keep[i, w:] = improved
            table[w:] = np.where(improved, candidate, table[w:])
    best = float(table[capacity])

    x = np.zeros(n)
    remaining = capacity
    for i in range(n - 1, -1, -1):
        if keep[i, remaining]:
            x[i] = 1.0
            remaining -= int(weights[i])
    return best, x
