"""Uncapacitated facility location instances.

Open facilities (fixed cost) and serve every client from an open one
(service cost).  Classic branch-and-bound workload with a mix of strong
LP relaxations and fractional openings.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem


def generate_facility_location(
    num_facilities: int, num_clients: int, seed: int = 0
) -> MIPProblem:
    """Minimize open + service cost (expressed as maximizing the negation).

    Variables: y_f (open facility f) then x[f, c] (serve c from f),
    flattened row-major after the y block.  Rows: each client served
    exactly once (equality); x[f, c] ≤ y_f linking rows (inequality).
    """
    if num_facilities < 2 or num_clients < 1:
        raise ProblemFormatError("UFL needs >= 2 facilities, >= 1 client")
    rng = np.random.default_rng(seed)
    open_cost = rng.integers(20, 60, size=num_facilities).astype(np.float64)
    # Euclidean-ish service costs from random plane positions.
    fpos = rng.random((num_facilities, 2)) * 10
    cpos = rng.random((num_clients, 2)) * 10
    service = np.linalg.norm(fpos[:, None, :] - cpos[None, :, :], axis=2)
    service = np.round(service * 3 + 1)

    ny = num_facilities
    nx = num_facilities * num_clients
    n = ny + nx

    def xvar(f: int, c: int) -> int:
        return ny + f * num_clients + c

    a_eq = np.zeros((num_clients, n))
    for c in range(num_clients):
        for f in range(num_facilities):
            a_eq[c, xvar(f, c)] = 1.0
    a_ub = np.zeros((nx, n))
    row = 0
    for f in range(num_facilities):
        for c in range(num_clients):
            a_ub[row, xvar(f, c)] = 1.0
            a_ub[row, f] = -1.0  # x_{fc} - y_f <= 0
            row += 1
    cost = np.concatenate([open_cost, service.ravel()])
    return MIPProblem(
        c=-cost,
        integer=np.concatenate(
            [np.ones(ny, dtype=bool), np.zeros(nx, dtype=bool)]
        ),
        a_ub=a_ub,
        b_ub=np.zeros(nx),
        a_eq=a_eq,
        b_eq=np.ones(num_clients),
        lb=np.zeros(n),
        ub=np.ones(n),
        name=f"ufl-{num_facilities}x{num_clients}-{seed}",
    )
