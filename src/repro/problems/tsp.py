"""Traveling salesman instances (Miller–Tucker–Zemlin formulation).

A compact MIP formulation of the asymmetric TSP: binary arc variables
x[i,j] with degree-constraint equalities and MTZ order variables u_i
(continuous) eliminating subtours:

    u_i − u_j + n·x[i,j] ≤ n − 1     for i, j ≥ 1, i ≠ j

Small and notoriously weak LP relaxation — a good stress case for the
branch-and-cut stack, and a true *mixed* program (continuous u).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem


def generate_tsp(num_cities: int, seed: int = 0) -> MIPProblem:
    """Random planar asymmetric TSP of ``num_cities`` cities (MTZ)."""
    if num_cities < 3:
        raise ProblemFormatError("TSP needs at least 3 cities")
    rng = np.random.default_rng(seed)
    pos = rng.random((num_cities, 2)) * 100.0
    dist = np.linalg.norm(pos[:, None, :] - pos[None, :, :], axis=2)
    dist = np.round(dist + rng.random((num_cities, num_cities)) * 2.0)
    np.fill_diagonal(dist, 0.0)

    n = num_cities
    arcs: List[Tuple[int, int]] = [
        (i, j) for i in range(n) for j in range(n) if i != j
    ]
    arc_index = {arc: k for k, arc in enumerate(arcs)}
    num_arcs = len(arcs)
    num_u = n - 1  # u_1 .. u_{n-1}; city 0 is the depot
    total = num_arcs + num_u

    def u_var(i: int) -> int:
        return num_arcs + (i - 1)

    a_eq = np.zeros((2 * n, total))
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            a_eq[i, arc_index[(i, j)]] = 1.0  # out-degree of i
            a_eq[n + j, arc_index[(i, j)]] = 1.0  # in-degree of j
    b_eq = np.ones(2 * n)

    mtz_rows = []
    mtz_rhs = []
    for i in range(1, n):
        for j in range(1, n):
            if i == j:
                continue
            row = np.zeros(total)
            row[u_var(i)] = 1.0
            row[u_var(j)] = -1.0
            row[arc_index[(i, j)]] = float(n)
            mtz_rows.append(row)
            mtz_rhs.append(float(n - 1))

    c = np.zeros(total)
    for (i, j), k in arc_index.items():
        c[k] = -dist[i, j]  # maximize negated tour length

    integer = np.zeros(total, dtype=bool)
    integer[:num_arcs] = True
    lb = np.zeros(total)
    ub = np.ones(total)
    lb[num_arcs:] = 1.0
    ub[num_arcs:] = float(n - 1)

    return MIPProblem(
        c=c,
        integer=integer,
        a_ub=np.vstack(mtz_rows),
        b_ub=np.array(mtz_rhs),
        a_eq=a_eq,
        b_eq=b_eq,
        lb=lb,
        ub=ub,
        name=f"tsp-{n}-{seed}",
    )


def tour_from_solution(problem: MIPProblem, x: np.ndarray, num_cities: int) -> List[int]:
    """Extract the city order from a solved arc vector."""
    n = num_cities
    succ = {}
    k = 0
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if x[k] > 0.5:
                succ[i] = j
            k += 1
    tour = [0]
    while len(tour) < n:
        nxt = succ.get(tour[-1])
        if nxt is None or nxt in tour:
            raise ProblemFormatError("solution does not encode a tour")
        tour.append(nxt)
    return tour


def tour_length(num_cities: int, seed: int, tour: List[int]) -> float:
    """Length of a tour under the same seeded distance matrix."""
    rng = np.random.default_rng(seed)
    pos = rng.random((num_cities, 2)) * 100.0
    dist = np.linalg.norm(pos[:, None, :] - pos[None, :, :], axis=2)
    dist = np.round(dist + rng.random((num_cities, num_cities)) * 2.0)
    np.fill_diagonal(dist, 0.0)
    total = 0.0
    for a, b in zip(tour, tour[1:] + [tour[0]]):
        total += dist[a, b]
    return float(total)
