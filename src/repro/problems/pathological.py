"""Pathological instance corpus: inputs built to hurt solvers.

Every case here is something a production front door eventually
receives: NaN costs, rows of zeros, duplicate and contradictory
constraints, twelve orders of magnitude between coefficients, the
classic simplex cycling examples, and well-posed problems that are
simply too big for their deadline.  The corpus is the test bed for
:mod:`repro.guard` — ``repro guard`` runs every case through sanitize →
solve under a budget and asserts nothing escapes as an unstructured
exception or a hang.

Each :class:`PathologicalCase` declares what the guard stack is
*expected* to do with it (``expect``):

- ``"reject"``    — the sanitizer must refuse it (fatal issues);
- ``"repair"``    — the sanitizer rewrites it, then it solves clean;
- ``"infeasible"``— sanitation or the solve proves infeasibility;
- ``"solve"``     — solves to optimality (possibly after watchdog
  intervention or engine escalation);
- ``"anytime"``   — a budget stops it; the result must still be a
  structured TIME_LIMIT/ITERATION_LIMIT answer with a dual bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.lp.problem import LinearProgram
from repro.mip.problem import MIPProblem

Problem = Union[LinearProgram, MIPProblem]


@dataclass
class PathologicalCase:
    """One named corpus member."""

    name: str
    #: What the guard stack should do with it (see module docstring).
    expect: str
    build: Callable[[], Problem] = None
    #: Simulated/host deadline override for "anytime" cases (seconds).
    deadline: Optional[float] = None
    notes: str = ""


def _nan_objective() -> LinearProgram:
    return LinearProgram(
        c=np.array([1.0, np.nan]),
        a_ub=np.array([[1.0, 1.0]]),
        b_ub=np.array([4.0]),
        lb=np.zeros(2),
        ub=np.full(2, 10.0),
    )


def _nan_matrix() -> LinearProgram:
    return LinearProgram(
        c=np.array([1.0, 2.0]),
        a_ub=np.array([[1.0, np.nan], [1.0, 1.0]]),
        b_ub=np.array([4.0, 6.0]),
        lb=np.zeros(2),
        ub=np.full(2, 10.0),
    )


def _inf_rhs() -> LinearProgram:
    return LinearProgram(
        c=np.array([1.0, 2.0]),
        a_ub=np.array([[1.0, 1.0], [2.0, 1.0]]),
        b_ub=np.array([np.inf, 6.0]),
        lb=np.zeros(2),
        ub=np.full(2, 10.0),
    )


def _empty_row() -> LinearProgram:
    return LinearProgram(
        c=np.array([3.0, 2.0]),
        a_ub=np.array([[0.0, 0.0], [1.0, 1.0]]),
        b_ub=np.array([5.0, 4.0]),
        lb=np.zeros(2),
        ub=np.full(2, 10.0),
    )


def _empty_row_infeasible() -> LinearProgram:
    return LinearProgram(
        c=np.array([3.0, 2.0]),
        a_ub=np.array([[0.0, 0.0], [1.0, 1.0]]),
        b_ub=np.array([-1.0, 4.0]),
        lb=np.zeros(2),
        ub=np.full(2, 10.0),
    )


def _duplicate_rows() -> LinearProgram:
    return LinearProgram(
        c=np.array([3.0, 2.0]),
        a_ub=np.array([[1.0, 2.0], [1.0, 2.0], [1.0, 0.0]]),
        b_ub=np.array([8.0, 6.0, 3.0]),
        lb=np.zeros(2),
        ub=np.full(2, 10.0),
    )


def _conflicting_eq() -> LinearProgram:
    return LinearProgram(
        c=np.array([1.0, 1.0]),
        a_eq=np.array([[1.0, 1.0], [1.0, 1.0]]),
        b_eq=np.array([2.0, 3.0]),
        lb=np.zeros(2),
        ub=np.full(2, 10.0),
    )


def _crossed_bounds_eps() -> LinearProgram:
    # Crossed by less than LinearProgram's own 1e-12 slack, so only the
    # sanitizer sees it.
    lb = np.array([0.0, 1.0 + 5e-13])
    ub = np.array([10.0, 1.0])
    return LinearProgram(
        c=np.array([1.0, 1.0]),
        a_ub=np.array([[1.0, 1.0]]),
        b_ub=np.array([6.0]),
        lb=lb,
        ub=ub,
    )


def _dynamic_range() -> LinearProgram:
    return LinearProgram(
        c=np.array([1.0, 1.0]),
        a_ub=np.array([[1e-6, 2e-6], [1e7, 3e7]]),
        b_ub=np.array([4e-6, 9e7]),
        lb=np.zeros(2),
        ub=np.full(2, 10.0),
    )


def _beale_cycling() -> LinearProgram:
    """Beale's classic degenerate LP: Dantzig pricing cycles forever."""
    return LinearProgram(
        c=np.array([0.75, -150.0, 0.02, -6.0]),
        a_ub=np.array(
            [
                [0.25, -60.0, -0.04, 9.0],
                [0.5, -90.0, -0.02, 3.0],
                [0.0, 0.0, 1.0, 0.0],
            ]
        ),
        b_ub=np.array([0.0, 0.0, 1.0]),
        lb=np.zeros(4),
        ub=np.full(4, 1e6),
    )


def _zero_matrix() -> LinearProgram:
    # Only the box binds; the PDHG power iteration sees an all-zero K.
    return LinearProgram(
        c=np.array([2.0, 1.0]),
        a_ub=np.array([[0.0, 0.0]]),
        b_ub=np.array([1.0]),
        lb=np.zeros(2),
        ub=np.array([3.0, 4.0]),
    )


def _near_singular() -> LinearProgram:
    eps = 1e-13
    return LinearProgram(
        c=np.array([1.0, 1.0]),
        a_ub=np.array([[1.0, 1.0], [1.0, 1.0 + eps]]),
        b_ub=np.array([2.0, 2.0]),
        lb=np.zeros(2),
        ub=np.full(2, 5.0),
    )


def _mip_wide_range() -> MIPProblem:
    return MIPProblem(
        c=np.array([1e6, 3.0, 2.0]),
        integer=np.array([True, True, False]),
        a_ub=np.array([[1e6, 1.0, 1.0], [0.0, 1.0, 2.0]]),
        b_ub=np.array([2e6, 4.0]),
        lb=np.zeros(3),
        ub=np.array([2.0, 4.0, 4.0]),
    )


def _mip_deadline(seed: int = 11, items: int = 40) -> MIPProblem:
    rng = np.random.default_rng(seed)
    c = rng.uniform(1, 10, items)
    a = rng.uniform(0, 5, (max(6, items // 2), items))
    b = a.sum(axis=1) * 0.35
    return MIPProblem(
        c=c,
        integer=np.ones(items, dtype=bool),
        a_ub=a,
        b_ub=b,
        lb=np.zeros(items),
        ub=np.ones(items),
        name="deadline-knapsack",
    )


def pathological_corpus() -> List[PathologicalCase]:
    """The pinned corpus, in a stable order (reports diff cleanly)."""
    return [
        PathologicalCase("nan-objective", "reject", _nan_objective),
        PathologicalCase("nan-matrix", "reject", _nan_matrix),
        PathologicalCase("inf-rhs", "reject", _inf_rhs),
        PathologicalCase("empty-row", "repair", _empty_row),
        PathologicalCase(
            "empty-row-infeasible", "infeasible", _empty_row_infeasible
        ),
        PathologicalCase("duplicate-rows", "repair", _duplicate_rows),
        PathologicalCase("conflicting-eq", "infeasible", _conflicting_eq),
        PathologicalCase("crossed-bounds-eps", "repair", _crossed_bounds_eps),
        PathologicalCase("dynamic-range", "repair", _dynamic_range),
        PathologicalCase(
            "beale-cycling", "solve", _beale_cycling,
            notes="degenerate; needs the Bland anti-cycling switch",
        ),
        PathologicalCase("zero-matrix", "solve", _zero_matrix),
        PathologicalCase("near-singular", "solve", _near_singular),
        PathologicalCase("mip-wide-range", "solve", _mip_wide_range),
        PathologicalCase(
            "mip-deadline", "anytime", _mip_deadline, deadline=0.25,
            notes="well-posed but budgeted: must stop with a bound",
        ),
    ]


def case_by_name(name: str) -> PathologicalCase:
    """Lookup helper for tests and the CLI."""
    for case in pathological_corpus():
        if case.name == name:
            return case
    raise KeyError(name)
