"""Bin packing instances.

Minimize the number of bins used to pack all items (classic set of
assignment + linking rows).  Symmetric and LP-weak — the workload where
branching rules and heuristics earn their keep.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem


def generate_bin_packing(
    num_items: int, num_bins: int, seed: int = 0, capacity: float = 100.0
) -> MIPProblem:
    """Random bin packing: items sized U(20, 60), bins of ``capacity``.

    Variables: y_b (bin used) then x[i, b] (item i in bin b), flattened
    item-major.  Rows: each item packed once (equality); per-bin
    capacity with linking (Σ_i s_i x[i,b] ≤ C y_b).
    """
    if num_items < 1 or num_bins < 1:
        raise ProblemFormatError("bin packing needs >= 1 item and >= 1 bin")
    rng = np.random.default_rng(seed)
    sizes = rng.uniform(20.0, 60.0, size=num_items).round()
    if sizes.max() > capacity:
        raise ProblemFormatError("an item exceeds the bin capacity")

    ny = num_bins
    nx = num_items * num_bins
    n = ny + nx

    def x_var(i: int, b: int) -> int:
        return ny + i * num_bins + b

    a_eq = np.zeros((num_items, n))
    for i in range(num_items):
        for b in range(num_bins):
            a_eq[i, x_var(i, b)] = 1.0
    a_ub = np.zeros((num_bins, n))
    for b in range(num_bins):
        a_ub[b, b] = -capacity
        for i in range(num_items):
            a_ub[b, x_var(i, b)] = sizes[i]

    c = np.zeros(n)
    c[:ny] = -1.0  # maximize -(bins used)
    # Mild symmetry breaking: later bins cost epsilon more.
    c[:ny] -= np.arange(ny) * 1e-4

    return MIPProblem(
        c=c,
        integer=np.ones(n, dtype=bool),
        a_ub=a_ub,
        b_ub=np.zeros(num_bins),
        a_eq=a_eq,
        b_eq=np.ones(num_items),
        lb=np.zeros(n),
        ub=np.ones(n),
        name=f"binpack-{num_items}x{num_bins}-{seed}",
    )


def first_fit_decreasing_bins(problem_sizes: np.ndarray, capacity: float) -> int:
    """FFD heuristic bin count — an upper-bound oracle for tests."""
    bins: list = []
    for size in sorted(problem_sizes, reverse=True):
        for k in range(len(bins)):
            if bins[k] + size <= capacity + 1e-9:
                bins[k] += size
                break
        else:
            bins.append(size)
    return len(bins)
