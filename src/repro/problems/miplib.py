"""The mini-MIPLIB registry: named, seeded, sized instances.

MIPLIB itself cannot be shipped (size/licensing); this registry plays
its role for every experiment — a fixed set of named instances spanning
the structural classes the paper discusses (binary knapsacks, covers,
assignment, facility location, true mixed unit commitment, and random
dense/sparse matrices).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem
from repro.problems.assignment import generate_assignment, generate_generalized_assignment
from repro.problems.facility import generate_facility_location
from repro.problems.knapsack import generate_knapsack
from repro.problems.multiknapsack import generate_multiknapsack
from repro.problems.random_mip import generate_random_mip
from repro.problems.setcover import generate_set_cover
from repro.problems.unit_commitment import generate_unit_commitment

#: name -> zero-argument constructor.
MINI_MIPLIB: Dict[str, Callable[[], MIPProblem]] = {
    "knap-20": lambda: generate_knapsack(20, seed=1),
    "knap-40-strong": lambda: generate_knapsack(40, seed=2, correlation="strong"),
    "cover-15x30": lambda: generate_set_cover(15, 30, seed=3),
    "cover-25x60": lambda: generate_set_cover(25, 60, seed=4),
    "assign-5": lambda: generate_assignment(5, seed=5),
    "gap-3x8": lambda: generate_generalized_assignment(3, 8, seed=6),
    "gap-4x12": lambda: generate_generalized_assignment(4, 12, seed=7),
    "ufl-4x10": lambda: generate_facility_location(4, 10, seed=8),
    "uc-3x4": lambda: generate_unit_commitment(3, 4, seed=9),
    "uc-4x6": lambda: generate_unit_commitment(4, 6, seed=10),
    "rand-dense-12": lambda: generate_random_mip(12, 8, seed=11, density=1.0),
    "rand-sparse-16": lambda: generate_random_mip(16, 10, seed=12, density=0.2),
    "mkp-12x4": lambda: generate_multiknapsack(12, 4, seed=13),
}


def instance_by_name(name: str) -> MIPProblem:
    """Construct a registered instance."""
    try:
        return MINI_MIPLIB[name]()
    except KeyError:
        raise ProblemFormatError(
            f"unknown instance {name!r}; available: {sorted(MINI_MIPLIB)}"
        ) from None
