"""Seeded instance generators and MPS I/O.

Stand-ins for the MIPLIB instances the paper references (§2.3, §3):
every generator is deterministic in its seed and parameterized by size,
so experiments scale smoothly from unit-test to benchmark size.

- :mod:`repro.problems.knapsack` — 0/1 knapsack (+ exact DP oracle).
- :mod:`repro.problems.setcover` — set covering.
- :mod:`repro.problems.assignment` — (generalized) assignment.
- :mod:`repro.problems.facility` — uncapacitated facility location.
- :mod:`repro.problems.unit_commitment` — unit commitment (a true
  *mixed* integer program; the paper cites it as a flagship MIP use).
- :mod:`repro.problems.flowshop` — permutation flow-shop (the IVM/GPU
  B&B workload of Gmys et al. and the multi-GPU works the paper cites).
- :mod:`repro.problems.random_mip` — random dense/sparse MIPs with a
  planted feasible point and controllable density (the §5.4 sweep).
- :mod:`repro.problems.mps` — fixed-format MPS read/write.
- :mod:`repro.problems.miplib` — the registry ("mini-MIPLIB").
"""

from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.problems.setcover import generate_set_cover
from repro.problems.assignment import generate_assignment, generate_generalized_assignment
from repro.problems.facility import generate_facility_location
from repro.problems.unit_commitment import generate_unit_commitment
from repro.problems.flowshop import FlowShop, generate_flowshop
from repro.problems.random_mip import generate_random_mip
from repro.problems.mps import read_mps, write_mps
from repro.problems.tsp import generate_tsp, tour_from_solution
from repro.problems.binpacking import generate_bin_packing
from repro.problems.multiknapsack import generate_multiknapsack
from repro.problems.miplib import MINI_MIPLIB, instance_by_name

__all__ = [
    "generate_knapsack",
    "knapsack_dp_optimal",
    "generate_set_cover",
    "generate_assignment",
    "generate_generalized_assignment",
    "generate_facility_location",
    "generate_unit_commitment",
    "FlowShop",
    "generate_flowshop",
    "generate_random_mip",
    "read_mps",
    "write_mps",
    "generate_tsp",
    "tour_from_solution",
    "generate_bin_packing",
    "generate_multiknapsack",
    "MINI_MIPLIB",
    "instance_by_name",
]
