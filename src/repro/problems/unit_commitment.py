"""Unit commitment instances — a true *mixed* integer program.

The paper's introduction cites unit commitment ([26], Ostrowski et al.)
as a flagship MIP application.  This compact formulation has binary
on/off decisions and continuous dispatch levels:

    minimize   Σ_t Σ_g (fixed_g u[g,t] + var_g p[g,t])
    s.t.       Σ_g p[g,t]  ≥ demand_t                (meet demand)
               pmin_g u[g,t] ≤ p[g,t] ≤ pmax_g u[g,t] (dispatch window)
               u binary, p continuous

expressed in the library's maximization convention (negated costs).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem


def generate_unit_commitment(
    num_generators: int, num_periods: int, seed: int = 0
) -> MIPProblem:
    """Random feasible unit-commitment instance.

    Variables: u[g, t] (binary block first, flattened row-major), then
    p[g, t] (continuous block).  Demand is drawn so the fleet can always
    meet it.
    """
    if num_generators < 2 or num_periods < 1:
        raise ProblemFormatError("UC needs >= 2 generators, >= 1 period")
    rng = np.random.default_rng(seed)
    pmax = rng.integers(50, 150, size=num_generators).astype(np.float64)
    pmin = np.ceil(pmax * rng.uniform(0.2, 0.4, size=num_generators))
    fixed_cost = rng.integers(100, 300, size=num_generators).astype(np.float64)
    var_cost = rng.integers(5, 25, size=num_generators).astype(np.float64)
    demand = rng.uniform(0.4, 0.8, size=num_periods) * pmax.sum()
    demand = np.floor(demand)

    g, t = num_generators, num_periods
    nu = g * t
    n = 2 * nu

    def u_var(gi: int, ti: int) -> int:
        return gi * t + ti

    def p_var(gi: int, ti: int) -> int:
        return nu + gi * t + ti

    rows = []
    rhs = []
    # Demand rows: -sum_g p[g,t] <= -demand_t.
    for ti in range(t):
        row = np.zeros(n)
        for gi in range(g):
            row[p_var(gi, ti)] = -1.0
        rows.append(row)
        rhs.append(-demand[ti])
    # Dispatch windows: p - pmax*u <= 0 and pmin*u - p <= 0.
    for gi in range(g):
        for ti in range(t):
            upper = np.zeros(n)
            upper[p_var(gi, ti)] = 1.0
            upper[u_var(gi, ti)] = -pmax[gi]
            rows.append(upper)
            rhs.append(0.0)
            lower = np.zeros(n)
            lower[u_var(gi, ti)] = pmin[gi]
            lower[p_var(gi, ti)] = -1.0
            rows.append(lower)
            rhs.append(0.0)

    cost = np.zeros(n)
    for gi in range(g):
        for ti in range(t):
            cost[u_var(gi, ti)] = fixed_cost[gi]
            cost[p_var(gi, ti)] = var_cost[gi]

    integer = np.zeros(n, dtype=bool)
    integer[:nu] = True
    ub = np.concatenate([np.ones(nu), np.repeat(pmax, t)])
    return MIPProblem(
        c=-cost,
        integer=integer,
        a_ub=np.vstack(rows),
        b_ub=np.array(rhs),
        lb=np.zeros(n),
        ub=ub,
        name=f"uc-{g}x{t}-{seed}",
    )
