.PHONY: install test bench bench-smoke warm-smoke portfolio-smoke cluster-smoke serve-bench fuzz chaos guard examples clean

install:
	pip install -e . || python setup.py develop

test:
	python -m pytest tests/ -q

bench:
	python -m pytest benchmarks/ --benchmark-only -q

serve-bench:
	python -m pytest benchmarks/bench_s1_serve_throughput.py --benchmark-only -q

bench-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro bench-smoke \
		--out BENCH_smoke.json --check BENCH_pdhg.json --check BENCH_s1.json \
		--check BENCH_chaos.json --check BENCH_warm.json \
		--check BENCH_portfolio.json --check BENCH_s2.json

warm-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro warm-bench \
		--node-limit 20000 --serve-requests 12 --out BENCH_warm.json

portfolio-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro portfolio-bench \
		--node-limit 2000 --out BENCH_portfolio.json --min-speedup 5.0

cluster-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro cluster-bench \
		--shards 1,2,4 --requests 400 --out BENCH_s2.json --min-speedup 3.0

fuzz:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro fuzz --budget 50 --seed 0

chaos:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro chaos --seed 0 \
		--trace chaos-trace.json --bench BENCH_chaos.json

guard:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} python -m repro guard

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
