"""GPU-friendly branch-and-bound with the IVM tree (Gmys et al., §2.3).

Schedules a permutation flow-shop with both tree representations — the
flat Integer-Vector-Matrix block that made pure-GPU B&B practical, and
the conventional linked-node stack — confirming identical searches while
contrasting their memory footprints.

Run:  python examples/flowshop_ivm.py
"""

from repro.mip.ivm import ivm_branch_and_bound, linked_list_branch_and_bound
from repro.problems import generate_flowshop
from repro.reporting import format_bytes, render_table

JOBS, MACHINES = 9, 3
shop = generate_flowshop(JOBS, MACHINES, seed=7)
print(f"permutation flow-shop: {JOBS} jobs x {MACHINES} machines\n")

ivm = ivm_branch_and_bound(JOBS, shop.lower_bound, shop.makespan)
linked = linked_list_branch_and_bound(JOBS, shop.lower_bound, shop.makespan)

assert ivm.best_cost == linked.best_cost
assert ivm.nodes_explored == linked.nodes_explored

print(f"optimal makespan : {ivm.best_cost:.0f}")
print(f"optimal sequence : {ivm.best_permutation}")
print()
rows = [
    (
        "IVM (flat block)",
        ivm.nodes_explored,
        ivm.pruned,
        format_bytes(ivm.tree_memory_bytes),
    ),
    (
        "linked list",
        linked.nodes_explored,
        linked.pruned,
        format_bytes(linked.tree_memory_bytes),
    ),
]
print(render_table(["representation", "nodes", "pruned", "tree memory"], rows))
ratio = linked.tree_memory_bytes / ivm.tree_memory_bytes
print(f"\nIVM uses {ratio:.0f}x less memory — and it is a constant-size,")
print("pointer-free block, which is why it maps so well onto GPU memory.")
