"""ParaSCIP-style distributed branch-and-bound (supervisor–worker).

Runs the same hard knapsack through the UG-style engine at several
worker counts over the simulated Summit-class network, showing the
speedup curve, per-worker load balance, and a checkpoint/restart cycle
(§2.1's consistent snapshots).

Run:  python examples/distributed_search.py
"""

import numpy as np

from repro.mip.snapshot import SearchSnapshot, resume_from_snapshot
from repro.problems import generate_knapsack
from repro.problems.knapsack import knapsack_dp_optimal
from repro.reporting import format_seconds, render_table
from repro.strategies import solve_distributed

problem = generate_knapsack(20, seed=11, correlation="strong")
expected, _ = knapsack_dp_optimal(problem)
print(f"instance: {problem.name}, DP optimum = {expected:.0f}\n")

baseline = solve_distributed(problem, num_workers=0)
rows = [("sequential", format_seconds(baseline.makespan_seconds), "1.00", "-", 0)]
for workers in (1, 2, 4, 8):
    run = solve_distributed(problem, num_workers=workers)
    assert abs(run.objective - expected) < 1e-6
    speedup = baseline.makespan_seconds / run.makespan_seconds
    balance = min(run.per_worker) / max(run.per_worker) if run.per_worker else 1.0
    rows.append(
        (
            f"{workers} workers",
            format_seconds(run.makespan_seconds),
            f"{speedup:.2f}",
            f"{balance:.2f}",
            run.messages,
        )
    )
print(render_table(["configuration", "makespan", "speedup", "balance", "messages"], rows))

print("\n--- checkpoint / restart ---")
checkpointed = solve_distributed(problem, num_workers=3, checkpoint_every=5)
snap_raw = checkpointed.snapshots[0]
snapshot = SearchSnapshot(
    leaves=[(lb.copy(), ub.copy()) for (lb, ub, _d) in snap_raw.tasks],
    incumbent_objective=(
        snap_raw.incumbent if snap_raw.incumbent is not None else -np.inf
    ),
)
resumed = resume_from_snapshot(problem, snapshot)
best = resumed.objective
if snap_raw.incumbent is not None:
    best = max(best, snap_raw.incumbent)
print(
    f"restarted from checkpoint with {snapshot.num_leaves} open sub-trees "
    f"→ optimum {best:.0f} (matches: {abs(best - expected) < 1e-6})"
)
