"""The §5.4 "super-MIP": choosing the dense/sparse code path at runtime.

"A super-MIP solver for GPUs would need to be written which dynamically
takes different code paths based on the input matrix characteristics."
This example feeds LPs of varying shape and density to the runtime
chooser and prints the priced options behind each decision, then shows
the hybrid engine making the same call inside a real solve.

Run:  python examples/super_mip_chooser.py
"""

import numpy as np

from repro.mip import BranchAndBoundSolver, SolverOptions
from repro.problems import generate_random_mip
from repro.reporting import format_seconds, render_table
from repro.strategies import HybridEngine
from repro.strategies.chooser import estimate_paths

print("priced per-iteration estimates (V100 GPU vs 64-core host):\n")
rows = []
for m, n in ((256, 512), (2048, 4096), (8192, 16384)):
    for density in (0.01, 0.3, 1.0):
        est = estimate_paths(m, n, density)
        rows.append(
            (
                f"{m}x{n}",
                density,
                format_seconds(est.dense_gpu_seconds),
                format_seconds(est.dense_cpu_seconds),
                format_seconds(est.sparse_gpu_seconds),
                format_seconds(est.sparse_cpu_seconds),
                est.choice.value,
            )
        )
print(
    render_table(
        ["shape", "density", "dense-GPU", "dense-CPU", "sparse-GPU", "sparse-CPU", "→ choice"],
        rows,
    )
)

print("\nsame decision inside a live hybrid solve:")
for name, problem in (
    ("dense 24x16", generate_random_mip(24, 16, seed=3, density=1.0, bound=3.0)),
    ("sparse 60x40", generate_random_mip(60, 40, seed=1, density=0.03, bound=2.0)),
):
    engine = HybridEngine()
    result = BranchAndBoundSolver(
        problem, SolverOptions(node_limit=10), engine=engine
    ).solve()
    print(
        f"  {name:13s} → path {engine.path.value:10s} "
        f"(makespan {format_seconds(engine.elapsed_seconds)}, "
        f"status {result.status.value})"
    )
