"""Tracing a solver's kernel stream on the simulated device.

Attaches the nvprof-style tracer to a V100 model, solves one LP
relaxation through the metered path, and prints the first slice of the
timeline plus the per-kernel utilization breakdown — the view a
performance engineer would use to see where §5.1's time actually goes.

Run:  python examples/device_timeline.py
"""

from repro.device import Device, Tracer, V100
from repro.lp.simplex import solve_lp
from repro.problems import generate_knapsack
from repro.reporting import format_seconds, render_table
from repro.strategies.engine import DeviceCostHook

problem = generate_knapsack(16, seed=4)
device = Device(V100)
tracer = Tracer(device)

result = solve_lp(problem.relaxation(), hook=DeviceCostHook(device, mode="dense"))
assert result.ok

print(f"LP optimum {result.objective:.2f} in {result.iterations} simplex iterations")
print(f"simulated device time: {format_seconds(device.clock.now)}\n")

print("first 12 timeline events:")
print(tracer.timeline(limit=12))

print("\nutilization by kernel:")
busy = tracer.utilization_report()
total = sum(busy.values())
rows = [
    (name, format_seconds(seconds), f"{100 * seconds / total:.1f}%")
    for name, seconds in sorted(busy.items(), key=lambda kv: -kv[1])
]
print(render_table(["kernel", "busy time", "share"], rows))
