"""Solve the whole mini-MIPLIB under the paper's recommended strategy.

A ParaSCIP-style campaign table: every registered instance solved with
branch-and-cut on the simulated strategy-2 platform, reporting size,
status, objective, tree size and simulated makespan.

Run:  python examples/mini_miplib_campaign.py
"""

from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.miplib import MINI_MIPLIB, instance_by_name
from repro.reporting import format_seconds, render_table
from repro.strategies.cpu_orchestrated import CpuOrchestratedEngine

NODE_LIMIT = 4000

rows = []
for name in sorted(MINI_MIPLIB):
    problem = instance_by_name(name)
    engine = CpuOrchestratedEngine()
    result = BranchAndBoundSolver(
        problem,
        SolverOptions(cut_rounds=2, node_limit=NODE_LIMIT),
        engine=engine,
    ).solve()
    rows.append(
        (
            name,
            problem.n,
            problem.num_integer,
            result.status.value,
            "-" if result.x is None else f"{result.objective:.6g}",
            result.stats.nodes_processed,
            result.stats.cuts_added,
            format_seconds(engine.elapsed_seconds),
        )
    )

print(
    render_table(
        ["instance", "vars", "int", "status", "objective", "nodes", "cuts", "sim time"],
        rows,
        title=f"mini-MIPLIB campaign — strategy 2 (V100), node limit {NODE_LIMIT}",
    )
)

solved = sum(1 for r in rows if r[3] == "optimal")
print(f"\nsolved to optimality: {solved}/{len(rows)}")
