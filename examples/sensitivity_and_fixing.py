"""Post-optimal analysis: duals, ranging, and reduced-cost fixing.

All the quantities below are read off the resident basis factors with
the same ftran/btran kernels the simplex already runs — free insight on
the device (§5.1's regime).  Reduced-cost fixing then removes variables
from the search for the whole subtree.

Run:  python examples/sensitivity_and_fixing.py
"""

import numpy as np

from repro.lp.sensitivity import analyze, reduced_cost_fixing
from repro.lp.simplex import solve_standard_form
from repro.mip.cuts.gomory import standard_integer_mask
from repro.problems import generate_knapsack
from repro.reporting import render_table

problem = generate_knapsack(12, seed=7)
sf = problem.relaxation().to_standard_form()
res = solve_standard_form(sf)
assert res.ok

report = analyze(sf, res)
print(f"LP bound: {res.objective:.2f}\n")

print("row duals and rhs ranging (how far each rhs can move):")
rows = []
for i in range(min(sf.m, 6)):
    lo, hi = report.rhs_ranges[i]
    rows.append(
        (
            f"row {i}",
            f"{report.duals[i]:.3f}",
            "-inf" if not np.isfinite(lo) else f"{lo:.2f}",
            "+inf" if not np.isfinite(hi) else f"{hi:.2f}",
        )
    )
print(render_table(["row", "dual", "Δb min", "Δb max"], rows))

int_cols = np.nonzero(standard_integer_mask(problem, sf))[0]
for gap_label, incumbent in (
    ("weak incumbent (bound − 50)", res.objective - 50.0),
    ("strong incumbent (bound − 1)", res.objective - 1.0),
):
    fixed = reduced_cost_fixing(sf, res, incumbent, int_cols)
    print(f"\n{gap_label}: {fixed.size} variables fixed to 0 by reduced cost")
    if fixed.size:
        originals = [int(np.nonzero(sf.pos_col == j)[0][0]) for j in fixed]
        print(f"  fixed items: {sorted(originals)}")
