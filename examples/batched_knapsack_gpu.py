"""§5.5 in action: solving dozens of node LPs concurrently on one GPU.

Sibling branch-and-bound nodes of small MIPs have tiny LP relaxations;
one at a time they cannot feed a GPU.  This example solves a batch of
knapsack relaxations three ways on the simulated V100 — serial launches,
concurrent streams, and a MAGMA-style lockstep batch — and prints the
throughput each achieves.

Run:  python examples/batched_knapsack_gpu.py
"""

from repro.device import Device, V100
from repro.device import kernels as K
from repro.lp import solve_lp_batch
from repro.problems import generate_knapsack
from repro.reporting import format_seconds, render_table

BATCH = 64
ITEMS = 12

lps = [generate_knapsack(ITEMS, seed=i).relaxation() for i in range(BATCH)]
batch_result = solve_lp_batch(lps)
assert batch_result.all_ok
iters = batch_result.iterations
m = lps[0].num_ub_rows + ITEMS
n = ITEMS + m
print(f"{BATCH} knapsack relaxations, lockstep simplex converged in {iters} iterations\n")


def charge_single(device, stream=None):
    device._charge(K.getrf_kernel(m), stream)
    for _ in range(iters):
        device._charge(K.trsv_kernel(m), stream)
        device._charge(K.trsv_kernel(m), stream)
        device._charge(K.gemv_kernel(n, m), stream)


serial = Device(V100)
for _ in range(BATCH):
    charge_single(serial)

streams = Device(V100)
for _ in range(BATCH):
    charge_single(streams, stream=streams.create_stream())
streams.synchronize()

batched = Device(V100)
batched._charge(K.batched_getrf_kernel(BATCH, m), None)
for _ in range(iters):
    batched._charge(K.batched_trsv_kernel(BATCH, m), None)
    batched._charge(K.batched_trsv_kernel(BATCH, m), None)
    batched._charge(K.batched_gemm_kernel(BATCH, 1, n, m), None)

rows = []
for name, device in (("serial", serial), ("streams", streams), ("batched", batched)):
    elapsed = device.clock.now
    rows.append(
        (
            name,
            format_seconds(elapsed),
            f"{BATCH / elapsed:,.0f}",
            device.kernel_count(),
        )
    )
print(render_table(["scheme", "simulated time", "LPs per second", "kernel launches"], rows))

serial_t = serial.clock.now
assert streams.clock.now < serial_t
assert batched.clock.now < streams.clock.now
print("\nbatched > streams > serial — exactly the §5.5 ordering.")
