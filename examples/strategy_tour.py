"""A tour of the paper's four parallel execution strategies (§3).

Solves one MIP under each strategy's metered engine and prints the
platform accounting side by side — the quickest way to see *why* the
paper recommends strategies 2 and 3.

Run:  python examples/strategy_tour.py
"""

from repro.problems import generate_knapsack
from repro.reporting import format_bytes, format_seconds, render_table
from repro.strategies import STRATEGIES, run_strategy

problem = generate_knapsack(16, seed=4)
print(f"instance: {problem.name}\n")

DESCRIPTIONS = {
    "gpu_only": "1: tree + LPs on GPU",
    "cpu_orchestrated": "2: tree on CPU, LPs on GPU",
    "hybrid": "3: CPU+GPU, runtime path choice",
    "big_mip_4": "4: LP sharded over 4 GPUs",
}

rows = []
reports = {}
for strategy in ("gpu_only", "cpu_orchestrated", "hybrid", "big_mip_4"):
    report = run_strategy(problem, strategy)
    reports[strategy] = report
    rows.append(
        (
            DESCRIPTIONS[strategy],
            format_seconds(report.makespan_seconds),
            report.kernels,
            report.h2d_transfers + report.d2h_transfers,
            format_bytes(report.bytes_moved),
            format_bytes(report.mem_peak_bytes),
        )
    )

print(
    render_table(
        ["strategy", "makespan", "kernels", "transfers", "bytes moved", "device mem"],
        rows,
    )
)

objectives = {round(r.result.objective, 6) for r in reports.values()}
assert len(objectives) == 1
print(f"\nevery strategy proved the same optimum: {objectives.pop()}")
best = min(reports, key=lambda s: reports[s].makespan_seconds)
print(f"fastest on this (single-device-sized) instance: {DESCRIPTIONS[best]}")
