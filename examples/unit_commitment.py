"""Unit commitment: the paper's flagship MIP application, end to end.

Builds a unit-commitment instance (binary on/off + continuous dispatch),
solves it with branch-and-cut, prints the commitment schedule, and then
re-runs the same search under the paper's recommended strategy 2
(CPU-orchestrated GPU execution) to show the metered platform report.

Run:  python examples/unit_commitment.py
"""

import numpy as np

from repro.mip import BranchAndBoundSolver, SolverOptions
from repro.problems import generate_unit_commitment
from repro.reporting import format_bytes, format_seconds, render_table
from repro.strategies import run_strategy

GENERATORS, PERIODS = 3, 4
problem = generate_unit_commitment(GENERATORS, PERIODS, seed=9)

result = BranchAndBoundSolver(
    problem, SolverOptions(cut_rounds=2, branching="pseudocost")
).solve()
assert result.ok

u = result.x[: GENERATORS * PERIODS].reshape(GENERATORS, PERIODS)
p = result.x[GENERATORS * PERIODS :].reshape(GENERATORS, PERIODS)

print(f"total cost: {-result.objective:.1f}  (nodes={result.stats.nodes_processed}, "
      f"cuts={result.stats.cuts_added})\n")
rows = []
for g in range(GENERATORS):
    schedule = " ".join("ON " if u[g, t] > 0.5 else "off" for t in range(PERIODS))
    dispatch = " ".join(f"{p[g, t]:5.0f}" for t in range(PERIODS))
    rows.append((f"gen {g}", schedule, dispatch))
print(render_table(["unit", "commitment", "dispatch (MW)"], rows))

print("\n--- same search on the simulated V100 platform (strategy 2) ---")
report = run_strategy(problem, "cpu_orchestrated")
print(f"simulated makespan : {format_seconds(report.makespan_seconds)}")
print(f"kernels launched   : {report.kernels}")
print(f"host<->device      : {report.h2d_transfers + report.d2h_transfers} transfers, "
      f"{format_bytes(report.bytes_moved)}")
print(f"device memory peak : {format_bytes(report.mem_peak_bytes)}")
assert np.isclose(report.result.objective, result.objective)
