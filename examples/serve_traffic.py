"""The serving layer under bursty traffic: batching + caching at work.

A synthetic bursty stream of small solve requests (knapsack LP
relaxations, heavy with duplicates) is replayed through the
:mod:`repro.serve` service twice — once dispatching every request on its
own (batch size 1), once with dynamic batching — and the per-stage
breakdown (queue wait, batch assembly, device time) plus the cache's
dedup rate are printed.  This is the paper's §5.5 regime ("many small
concurrent problems") turned into a system.

Run:  python examples/serve_traffic.py
"""

from repro.reporting import format_seconds, render_table
from repro.serve import BatchingPolicy, lp_pool, run_load, synthetic_stream

REQUESTS = 120
DISTINCT = 48          # enough repeats to exercise the cache
MEAN_INTERARRIVAL = 2e-5
WORKERS = 2

pool = lp_pool(DISTINCT, num_items=12, seed=42)
stream = synthetic_stream(
    pool,
    REQUESTS,
    MEAN_INTERARRIVAL,
    seed=7,
    burst_length=20,     # 20-request bursts ...
    burst_gap=5e-4,      # ... separated by idle gaps
)
print(
    f"{REQUESTS} requests over {DISTINCT} distinct problems, "
    f"bursts of 20 every {format_seconds(5e-4)}\n"
)

rows = []
for label, batch_size in (("one-per-dispatch", 1), ("dynamic batch 16", 16)):
    policy = BatchingPolicy(max_batch_size=batch_size, max_wait=5e-4)
    summary = run_load(stream, policy=policy, num_workers=WORKERS)
    rows.append(
        (
            label,
            round(summary["throughput"]),
            summary["batches"],
            summary["cache_hits"] + summary["coalesced"],
            f"{summary['dedup_rate']:.0%}",
            format_seconds(summary["mean_queue_wait"]),
            format_seconds(summary["mean_device"]),
            format_seconds(summary["mean_latency"]),
        )
    )

print(
    render_table(
        [
            "policy",
            "req/s",
            "batches",
            "deduped",
            "dedup rate",
            "queue wait",
            "device",
            "latency",
        ],
        rows,
        title=f"serving {REQUESTS} requests on {WORKERS} simulated V100s",
    )
)
print(
    "\nDynamic batching coalesces compatible requests into lockstep device"
    "\nbatches; the fingerprint cache answers repeats without any device work."
)
