"""Column generation (§3.3): cutting stock with knapsack pricing.

The hybrid strategy's CPU side hosts "advanced heuristics such as …
column generation" while the GPU re-solves the growing master LP — the
incremental-matrix reuse pattern of §4.3.  This example runs the full
Gilmore–Gomory loop and prints the generated patterns.

Run:  python examples/cutting_stock_colgen.py
"""

import numpy as np

from repro.mip.colgen import CuttingStockInstance, solve_cutting_stock
from repro.reporting import render_table

instance = CuttingStockInstance(
    stock_width=100.0,
    widths=np.array([45.0, 36.0, 31.0, 14.0]),
    demands=np.array([40.0, 60.0, 35.0, 20.0]),
)

result = solve_cutting_stock(instance)

print(f"stock width      : {instance.stock_width:.0f}")
print(f"demands          : {dict(zip(instance.widths, instance.demands))}")
print(f"LP lower bound   : {result.lp_bound:.2f} rolls")
print(f"integer solution : {result.rolls:.0f} rolls")
print(f"master re-solves : {result.master_solves}  "
      f"(pricing rounds: {result.pricing_rounds})\n")

rows = []
for p in range(result.patterns.shape[1]):
    if result.usage[p] < 0.5:
        continue
    pattern = result.patterns[:, p]
    desc = " + ".join(
        f"{int(pattern[i])}x{instance.widths[i]:.0f}"
        for i in range(instance.num_items)
        if pattern[i] > 0.5
    )
    waste = instance.stock_width - float(instance.widths @ pattern)
    rows.append((desc, int(result.usage[p]), f"{waste:.0f}"))
print(render_table(["pattern (cuts per roll)", "rolls", "waste"], rows))

coverage = result.patterns @ result.usage
assert np.all(coverage >= instance.demands - 1e-6)
print("\nall demands covered ✓")
