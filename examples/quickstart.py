"""Quickstart: define and solve a small mixed integer program.

A factory chooses production quantities of two products (integer) and
an overtime level (continuous) to maximize profit under machine-hour
and material budgets::

    maximize  30 x0 + 40 x1 + 5 y
    s.t.      2 x0 + 4 x1 - y ≤ 40      (machine hours, overtime helps)
              3 x0 + 2 x1     ≤ 30      (material)
              y ≤ 8                     (overtime cap)
              x integer ≥ 0, y ≥ 0

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.mip import BranchAndBoundSolver, MIPProblem, SolverOptions

problem = MIPProblem(
    c=np.array([30.0, 40.0, 5.0]),
    integer=np.array([True, True, False]),
    a_ub=np.array(
        [
            [2.0, 4.0, -1.0],
            [3.0, 2.0, 0.0],
        ]
    ),
    b_ub=np.array([40.0, 30.0]),
    lb=np.zeros(3),
    ub=np.array([20.0, 20.0, 8.0]),
    name="factory",
)

solver = BranchAndBoundSolver(problem, SolverOptions(keep_tree=True))
result = solver.solve()

print(f"status     : {result.status.value}")
print(f"objective  : {result.objective:.2f}")
print(f"x0 (prod A): {result.x[0]:.0f}")
print(f"x1 (prod B): {result.x[1]:.0f}")
print(f"y overtime : {result.x[2]:.2f}")
print(f"nodes      : {result.stats.nodes_processed}")
print(f"LP iters   : {result.stats.lp_iterations}")
print()
print("Branch-and-bound tree (Figure 1 style):")
print(result.tree.render())

assert result.ok
assert problem.is_feasible(result.x)
