"""Differential cross-solver tests: agreement on healthy instances,
detection on contrived contradictions."""

import pytest

from repro.check import DifferentialReport, SolverRun, differential_lp, differential_mip
from repro.check.differential import DIFFERENTIAL_RTOL, PDHG_DIFFERENTIAL_EPS
from repro.errors import SolverDisagreement
from repro.problems.knapsack import generate_knapsack
from repro.problems.random_mip import generate_random_mip


class TestDifferentialLP:
    def test_all_solvers_agree_on_random_relaxations(self):
        for seed in range(4):
            lp = generate_random_mip(6, 4, seed=seed, density=0.8).relaxation()
            report = differential_lp(lp)
            assert report.ok, report.disagreements
            names = [r.name for r in report.runs]
            assert "simplex" in names and "dual_simplex" in names

    def test_batch_pair_runs_when_lockstep_compatible(self):
        lp = generate_knapsack(10, seed=1).relaxation()
        report = differential_lp(lp)
        assert report.ok
        names = [r.name for r in report.runs]
        assert "batch_simplex[0]" in names and "batch_simplex[1]" in names

    def test_iteration_limit_is_inconclusive_not_flagged(self):
        lp = generate_random_mip(5, 3, seed=1).relaxation()
        report = differential_lp(lp)
        for run in report.runs:
            if run.status == "iteration_limit":
                assert not run.conclusive


class TestDifferentialMIP:
    def test_all_configurations_agree(self):
        for seed in range(3):
            problem = generate_random_mip(6, 4, seed=seed, density=0.7)
            report = differential_mip(problem)
            assert report.ok, report.disagreements
            assert len([r for r in report.runs if r.conclusive]) >= 6

    def test_strategy_skip(self):
        problem = generate_random_mip(5, 3, seed=4)
        report = differential_mip(problem, strategies=())
        assert report.ok
        assert all(r.name.startswith("bb/") for r in report.runs)


class TestPairComparison:
    def _report(self, runs):
        report = DifferentialReport(problem_name="contrived", runs=runs)
        report._compare_pairs(DIFFERENTIAL_RTOL)
        return report

    def test_status_contradiction_flagged(self):
        report = self._report(
            [
                SolverRun(name="a", status="optimal", objective=1.0),
                SolverRun(name="b", status="infeasible", objective=float("nan")),
            ]
        )
        assert not report.ok
        assert report.disagreements[0].kind == "status"

    def test_objective_gap_flagged(self):
        report = self._report(
            [
                SolverRun(name="a", status="optimal", objective=10.0),
                SolverRun(name="b", status="optimal", objective=10.5),
            ]
        )
        assert not report.ok
        assert report.disagreements[0].kind == "objective"
        with pytest.raises(SolverDisagreement):
            report.raise_for_failures()

    def test_inconclusive_runs_never_flag(self):
        report = self._report(
            [
                SolverRun(name="a", status="optimal", objective=10.0),
                SolverRun(
                    name="b",
                    status="iteration_limit",
                    objective=0.0,
                    conclusive=False,
                ),
            ]
        )
        assert report.ok

    def test_tolerance_respected(self):
        report = self._report(
            [
                SolverRun(name="a", status="optimal", objective=10.0),
                SolverRun(name="b", status="optimal", objective=10.0 + 1e-9),
            ]
        )
        assert report.ok


class TestDifferentialPDHG:
    def test_pdhg_lane_runs_and_agrees(self):
        lp = generate_random_mip(6, 4, seed=2, density=0.8).relaxation()
        report = differential_lp(lp)
        assert report.ok, report.disagreements
        pdhg = [r for r in report.runs if r.name == "pdhg"]
        assert len(pdhg) == 1
        assert pdhg[0].conclusive
        assert "eps=" in pdhg[0].note

    def test_pdhg_lane_can_be_excluded(self):
        lp = generate_knapsack(8, seed=3).relaxation()
        report = differential_lp(lp, include_pdhg=False)
        assert report.ok
        assert all(r.name != "pdhg" for r in report.runs)

    def test_tolerance_policy_separates_scales(self):
        # The PDHG solve tolerance must sit well inside the comparison
        # tolerance, or first-order slack would trip false disagreements.
        assert PDHG_DIFFERENTIAL_EPS <= DIFFERENTIAL_RTOL / 10

    def test_mip_configs_include_pdhg_nodes(self):
        problem = generate_random_mip(6, 4, seed=4)
        report = differential_mip(problem)
        assert report.ok, report.disagreements
        names = [r.name for r in report.runs]
        assert "bb/pdhg_nodes" in names
