"""First-order certificate audits: honest eps-KKT points pass, lies fail."""

import numpy as np
import pytest

from repro.check import (
    certify_first_order_lp,
    certify_lp_result,
    certify_mip_solution,
)
from repro.lp.pdhg import PDHGOptions, solve_lp_pdhg, solve_standard_form_pdhg
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.mip.problem import MIPProblem

EPS = 1e-8


def random_lp(m, n, seed):
    rng = np.random.default_rng(seed)
    return LinearProgram(
        c=rng.standard_normal(n),
        a_ub=rng.standard_normal((m, n)),
        b_ub=rng.random(m) * 4 + 0.5,
        ub=np.full(n, 10.0),
    )


def solved(lp, eps=EPS):
    res = solve_lp_pdhg(lp, PDHGOptions(tolerance=eps))
    assert res.status is LPStatus.OPTIMAL
    return res


class TestFirstOrderCertificate:
    def test_honest_solves_certify(self):
        for seed in range(5):
            lp = random_lp(4, 5, seed=seed)
            report = certify_first_order_lp(lp, solved(lp), eps=EPS)
            assert report.ok, [c.name for c in report.failures]

    def test_equality_rows_certify(self):
        lp = LinearProgram(
            c=[1.0, 2.0, -1.0],
            a_eq=[[1.0, 1.0, 1.0]],
            b_eq=[2.0],
            a_ub=[[1.0, -1.0, 0.0]],
            b_ub=[1.0],
            ub=[2.0, 2.0, 2.0],
        )
        report = certify_first_order_lp(lp, solved(lp), eps=EPS)
        assert report.ok, [c.name for c in report.failures]

    def test_corrupted_primal_is_caught(self):
        lp = random_lp(4, 5, seed=9)
        res = solved(lp)
        res.x = res.x + 1e-3  # leaves the eps-KKT neighborhood
        report = certify_first_order_lp(lp, res, eps=EPS)
        assert not report.ok

    def test_corrupted_objective_is_caught(self):
        lp = random_lp(4, 5, seed=10)
        res = solved(lp)
        res.objective += 1e-2
        report = certify_first_order_lp(lp, res, eps=EPS)
        assert not report.ok
        assert any(c.name == "objective" for c in report.failures)

    def test_negative_inequality_dual_is_caught(self):
        lp = random_lp(4, 5, seed=11)
        res = solved(lp)
        res.y = res.y.copy()
        res.y[0] = -0.5  # inequality duals must stay in the cone
        report = certify_first_order_lp(lp, res, eps=EPS)
        assert not report.ok

    def test_optimal_without_duals_is_caught(self):
        lp = random_lp(3, 3, seed=12)
        res = solved(lp)
        res.y = None
        report = certify_first_order_lp(lp, res, eps=EPS)
        assert not report.ok
        assert any(c.name == "status" for c in report.failures)

    def test_shape_mismatched_duals_are_caught(self):
        lp = random_lp(3, 3, seed=13)
        res = solved(lp)
        res.y = np.zeros(5)
        report = certify_first_order_lp(lp, res, eps=EPS)
        assert not report.ok
        assert any(c.name == "shape" for c in report.failures)

    def test_non_optimal_status_is_vacuously_ok(self):
        lp = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[-1.0])
        res = solve_lp_pdhg(lp)
        assert res.status is LPStatus.INFEASIBLE
        report = certify_first_order_lp(lp, res)
        assert report.ok

    def test_wider_eps_accepts_looser_points(self):
        # The audit is parameterized by the solve's declared accuracy.
        lp = random_lp(5, 5, seed=14)
        loose = solve_lp_pdhg(lp, PDHGOptions(tolerance=1e-4))
        assert loose.status is LPStatus.OPTIMAL
        assert certify_first_order_lp(lp, loose, eps=1e-4).ok
        # The same point audited at vertex-grade accuracy fails.
        assert not certify_first_order_lp(lp, loose, eps=1e-12).ok


class TestExplicitTolerances:
    def test_lp_result_with_first_order_tolerances(self):
        lp = random_lp(4, 5, seed=15)
        out = solve_standard_form_pdhg(lp.to_standard_form(), PDHGOptions(tolerance=EPS))
        assert out.status is LPStatus.OPTIMAL
        report = certify_lp_result(
            lp, out, feasibility_tol=1e-6, optimality_tol=1e-6
        )
        assert report.ok, [c.name for c in report.failures]

    def test_mip_solution_feasibility_tol_both_ways(self):
        problem = MIPProblem(
            c=[1.0, 1.0],
            integer=np.array([True, False]),
            a_ub=[[1.0, 1.0]],
            b_ub=[1.5],
            ub=[1.0, 1.0],
        )
        x = np.array([1.0, 0.5 + 1e-5])  # violates the row by exactly 1e-5
        assert certify_mip_solution(problem, x, feasibility_tol=1e-4).ok
        report = certify_mip_solution(problem, x, feasibility_tol=1e-6)
        assert not report.ok
        assert any(c.name == "rows_ub" for c in report.failures)

    def test_mip_solution_integrality_tol_both_ways(self):
        problem = MIPProblem(
            c=[1.0, 1.0],
            integer=np.array([True, False]),
            a_ub=[[1.0, 1.0]],
            b_ub=[1.5],
            ub=[1.0, 1.0],
        )
        x = np.array([1.0 - 1e-5, 0.5])
        assert certify_mip_solution(
            problem, x, feasibility_tol=1e-4, integrality_tol=1e-4
        ).ok
        report = certify_mip_solution(
            problem, x, feasibility_tol=1e-4, integrality_tol=1e-7
        )
        assert not report.ok
        assert any(c.name == "integrality" for c in report.failures)
