"""Greedy shrinker tests: minimization, predicate safety, monotone size."""

import numpy as np

from repro.check import shrink
from repro.check.shrinker import _size
from repro.errors import ReproError
from repro.problems.random_mip import generate_random_mip


class TestShrink:
    def test_shrinks_to_single_variable_for_trivial_predicate(self):
        problem = generate_random_mip(8, 6, seed=0, density=0.8)

        result = shrink(problem, lambda p: True)
        assert result.reduced
        rows, n, nnz = result.final_size
        assert n == 1 and rows == 0

    def test_preserves_failure_property(self):
        problem = generate_random_mip(8, 6, seed=1, density=0.9)
        # "Fails" whenever some coefficient of c is negative.
        predicate = lambda p: bool(np.any(p.c < 0))
        assert predicate(problem)

        result = shrink(problem, predicate)
        assert predicate(result.problem)
        assert result.final_size <= result.original_size

    def test_size_never_increases(self):
        problem = generate_random_mip(7, 5, seed=2)
        result = shrink(problem, lambda p: p.n >= 2)
        assert result.final_size <= _size(problem)
        assert result.problem.n >= 2

    def test_predicate_exception_counts_as_not_failing(self):
        problem = generate_random_mip(6, 4, seed=3)

        def touchy(p):
            if p.n < problem.n:
                raise ReproError("cannot evaluate reduced instance")
            return True

        result = shrink(problem, touchy)
        # Nothing smaller is accepted, so the instance survives unchanged.
        assert result.problem.n == problem.n

    def test_attempt_budget_respected(self):
        problem = generate_random_mip(8, 6, seed=4, density=0.9)
        result = shrink(problem, lambda p: True, max_attempts=10)
        assert result.attempts <= 10

    def test_deterministic(self):
        problem = generate_random_mip(8, 6, seed=5, density=0.8)
        predicate = lambda p: bool(np.any(p.c < 0))
        if not predicate(problem):
            predicate = lambda p: True
        r1 = shrink(problem, predicate)
        r2 = shrink(problem, predicate)
        assert r1.final_size == r2.final_size
        assert np.array_equal(r1.problem.c, r2.problem.c)
