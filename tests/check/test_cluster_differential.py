"""The cluster-equivalence differential lane (satellite of PR 10).

A one-shard :class:`repro.cluster.ClusterService` over the zero-cost
network must be observationally identical to a plain
:class:`repro.serve.SolveService`: same request stream in, bitwise-equal
``report_dict`` responses out, modulo ``trace_id``.  Pinned across the
paths where the front door could plausibly drift — fresh solves,
coalesced duplicates, exact cache hits after delivery, and a mixed
LP/MIP pool under batching.
"""

from repro.check import differential_cluster
from repro.cluster import ClusterService
from repro.comm.network import ZERO_COST
from repro.serve.workload import lp_pool, mip_pool


def _stream(problems, requests, gap=1e-4):
    return [(gap * i, problems[i % len(problems)]) for i in range(requests)]


class TestClusterDifferential:
    def test_fresh_solves_match(self):
        report = differential_cluster(_stream(lp_pool(6, seed=3), 6))
        assert report.ok, [d.__dict__ for d in report.disagreements]
        assert len(report.runs) == 2

    def test_duplicates_and_cache_hits_match(self):
        # 3 distinct problems x 8 requests: coalescing while in flight,
        # cluster-cache hits after delivery — both must mirror the
        # single service's own coalescing and result cache exactly.
        report = differential_cluster(_stream(lp_pool(3, seed=5), 24))
        assert report.ok, [d.__dict__ for d in report.disagreements]

    def test_mixed_lp_mip_pool_matches(self):
        pool = lp_pool(3, seed=7) + mip_pool(3, num_items=8, seed=7)
        report = differential_cluster(_stream(pool, 18))
        assert report.ok, [d.__dict__ for d in report.disagreements]

    def test_widely_spaced_arrivals_match(self):
        # Arrivals far apart: every request finds the service idle and
        # repeats hit the (cluster) cache long after delivery.
        report = differential_cluster(_stream(lp_pool(2, seed=9), 8, gap=1.0))
        assert report.ok, [d.__dict__ for d in report.disagreements]

    def test_cluster_stamps_its_own_trace_ids(self):
        # The "modulo trace_id" carve-out is load-bearing: the cluster
        # front door assigns cluster-level trace ids.
        cluster = ClusterService(groups=1, network=ZERO_COST)
        rid = cluster.submit(lp_pool(1, seed=1)[0], at=0.0)
        (response,) = cluster.close()
        assert response.trace_id == f"req-{rid:06d}"

    def test_count_mismatch_is_flagged(self):
        # The lane itself must fail loudly on a dropped response: feed
        # the comparator two streams of different lengths by replaying
        # an empty stream against a doctored report.
        report = differential_cluster([])
        assert report.ok
        assert all(run.note.startswith("0 responses") for run in report.runs)
