"""The warm-vs-cold differential lane and its fuzz/replay plumbing.

Green over the standard differential corpus (random MIPs + knapsacks)
and the 14-case pathological corpus; contrived disagreements and
determinism breaks must be flagged; the fuzz harness shrinks and saves
a replayable repro when the warm lane fails.
"""

import numpy as np
import pytest

from repro.check import (
    differential_mip,
    differential_warm_lp,
    differential_warm_mip,
    replay_repro,
    run_fuzz,
)
from repro.check.differential import _MIP_CONFIGS, DifferentialReport
from repro.check.fuzz import FuzzOptions
from repro.check.serialize import save_repro
from repro.errors import ReproError
from repro.lp.problem import LinearProgram
from repro.mip.problem import MIPProblem
from repro.problems.knapsack import generate_knapsack
from repro.problems.pathological import pathological_corpus
from repro.problems.random_mip import generate_random_mip


class TestWarmLPLane:
    def test_green_on_random_relaxations(self):
        for seed in range(3):
            lp = generate_random_mip(6, 4, seed=seed, density=0.8).relaxation()
            report = differential_warm_lp(lp, seed=seed)
            assert report.ok, report.disagreements
            names = [r.name for r in report.runs]
            assert "cold[base]" in names and "warm[base]" in names

    def test_base_pair_is_zero_pivot(self):
        # Warm from its own optimal basis: dual feasible, no work left.
        lp = generate_knapsack(10, seed=2).relaxation()
        report = differential_warm_lp(lp, perturbations=0)
        assert report.ok
        assert [r.name for r in report.runs] == ["cold[base]", "warm[base]"]

    def test_perturbed_pairs_compared_per_instance(self):
        lp = generate_knapsack(12, seed=4).relaxation()
        report = differential_warm_lp(lp, perturbations=4, seed=1)
        assert report.ok, report.disagreements
        # base pair + 4 perturbed pairs, cold and warm each.
        assert len(report.runs) == 10


class TestWarmMIPLane:
    def test_green_on_differential_corpus(self):
        for seed in range(3):
            problem = generate_random_mip(6, 4, seed=seed, density=0.7)
            report = differential_warm_mip(problem)
            assert report.ok, report.disagreements
        report = differential_warm_mip(generate_knapsack(12, seed=5))
        assert report.ok, report.disagreements

    def test_green_on_pathological_corpus(self):
        # The warm lane must never *introduce* a disagreement, even on
        # the adversarial corpus — cases the solver rejects outright
        # (NaN/Inf inputs) must reject identically warm and cold.
        checked = 0
        corpus = pathological_corpus()
        assert len(corpus) == 14
        for case in corpus:
            problem = case.build()
            if isinstance(problem, LinearProgram):
                try:
                    report = differential_warm_lp(problem, perturbations=1)
                except (ReproError, ValueError, FloatingPointError):
                    continue  # rejected before any lane ran: nothing to compare
            elif isinstance(problem, MIPProblem):
                try:
                    report = differential_warm_mip(problem, node_limit=500)
                except (ReproError, ValueError, FloatingPointError):
                    continue
            else:  # pragma: no cover - corpus holds only LPs and MIPs
                continue
            checked += 1
            assert report.ok, (case.name, report.disagreements)
        assert checked >= 8  # most of the corpus actually exercises the lane

    def test_mip_configs_include_a_cold_lane(self):
        names = [cfg[0] for cfg in _MIP_CONFIGS]
        assert "bb/cold_nodes" in names
        warm_flags = {cfg[0]: cfg[5] for cfg in _MIP_CONFIGS}
        assert warm_flags["bb/cold_nodes"] is False
        assert warm_flags["bb/best_first+pseudocost"] is True

    def test_cold_lane_runs_inside_differential_mip(self):
        problem = generate_random_mip(5, 3, seed=2, density=0.7)
        report = differential_mip(problem, strategies=())
        assert report.ok, report.disagreements
        assert "bb/cold_nodes" in [r.name for r in report.runs]

    def test_determinism_break_is_flagged(self, monkeypatch):
        # Inject run-to-run jitter into the solver: the two warm runs
        # disagree with each other and the lane must call it out.
        from repro.mip import solver as solver_mod

        problem = generate_knapsack(10, seed=6)
        real_solve = solver_mod.BranchAndBoundSolver.solve
        calls = {"n": 0}

        def jittery(self):
            result = real_solve(self)
            calls["n"] += 1
            if calls["n"] == 2:  # second run only: nondeterminism
                result.stats.nodes_processed += 1
            return result

        monkeypatch.setattr(solver_mod.BranchAndBoundSolver, "solve", jittery)
        report = differential_warm_mip(problem)
        assert not report.ok
        assert report.disagreements[0].kind == "determinism"

    def test_objective_disagreement_is_flagged(self, monkeypatch):
        from repro.mip import solver as solver_mod

        problem = generate_knapsack(10, seed=7)
        real_solve = solver_mod.BranchAndBoundSolver.solve

        def skewed(self):
            result = real_solve(self)
            if not self.options.warm_start:  # cold lane lies
                result.objective += 1.0
            return result

        monkeypatch.setattr(solver_mod.BranchAndBoundSolver, "solve", skewed)
        report = differential_warm_mip(problem)
        assert not report.ok
        kinds = {d.kind for d in report.disagreements}
        assert "objective" in kinds


class TestWarmFuzzLane:
    def _options(self, tmp_path, **overrides):
        defaults = dict(
            budget=3,
            seed=0,
            certificates=False,
            differential=False,
            lp_differential=False,
            metamorphic=False,
            warm_differential=True,
            node_limit=2000,
            max_vars=5,
            max_rows=4,
            shrink_attempts=20,
            out_dir=str(tmp_path),
        )
        defaults.update(overrides)
        return FuzzOptions(**defaults)

    def test_warm_checks_counted_on_clean_run(self, tmp_path):
        report = run_fuzz(self._options(tmp_path))
        assert report.warm_checks >= 1
        assert report.total_checks >= report.warm_checks
        assert not report.failures

    def test_warm_disagreement_shrinks_to_replayable_repro(
        self, tmp_path, monkeypatch
    ):
        # Break the lane itself (deterministically): every warm
        # differential reports a fabricated objective disagreement, so
        # the shrinker's predicate holds on every reduction step.
        from repro.check import fuzz as fuzz_mod
        from repro.check.differential import Disagreement

        def always_disagrees(problem, rtol=0.0, node_limit=0):
            report = DifferentialReport(problem_name=f"{problem.name}/warm")
            report.disagreements.append(
                Disagreement(
                    left="bb/warm",
                    right="bb/cold",
                    kind="objective",
                    left_value="1",
                    right_value="2",
                    delta=1.0,
                )
            )
            return report

        monkeypatch.setattr(
            fuzz_mod, "differential_warm_mip", always_disagrees
        )
        report = run_fuzz(self._options(tmp_path, budget=1))
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.kind == "warm"
        assert failure.repro_path is not None

        # `repro replay` reproduces the disagreement from the saved file.
        replayed = replay_repro(failure.repro_path)
        assert replayed.warm_checks == 1
        assert len(replayed.failures) == 1
        assert "bb/warm vs bb/cold" in replayed.failures[0].detail

    def test_replay_green_warm_repro(self, tmp_path):
        # A warm-kind repro of a healthy instance replays clean.
        problem = generate_knapsack(8, seed=9)
        path = str(tmp_path / "warm_ok.json")
        save_repro(path, "warm", problem, seed=0, detail="manual")
        report = replay_repro(path)
        assert report.warm_checks == 1
        assert not report.failures
