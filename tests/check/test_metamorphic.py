"""Metamorphic transform tests: exact expected-optimum relations."""

import numpy as np
import pytest

from repro.check import check_metamorphic, metamorphic_variants
from repro.check.metamorphic import reflect_box, scale_objective
from repro.errors import MetamorphicViolation
from repro.mip.problem import MIPProblem
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.random_mip import generate_random_mip


def _solve(problem):
    return BranchAndBoundSolver(problem, SolverOptions()).solve()


class TestVariantConstruction:
    def test_all_variants_applicable_to_boxed_instances(self):
        problem = generate_random_mip(6, 4, seed=0)
        result = _solve(problem)
        variants = metamorphic_variants(
            problem, np.random.default_rng(0), x_opt=result.x
        )
        names = {v.name.split("[")[0] for v in variants}
        assert names == {
            "permute_variables",
            "permute_rows",
            "scale_rows",
            "scale_objective",
            "reflect_box",
            "fix_variable",
        }

    def test_reflect_box_requires_finite_bounds(self):
        problem = MIPProblem(
            c=np.array([1.0, 1.0]),
            integer=np.array([True, False]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([4.0]),
            lb=np.zeros(2),
            ub=np.array([3.0, np.inf]),
        )
        assert reflect_box(problem, np.random.default_rng(0)) is None

    def test_scale_objective_relation_is_exact(self):
        problem = generate_random_mip(5, 3, seed=1)
        variant = scale_objective(problem, np.random.default_rng(1))
        # Power-of-two scaling: the expected value is exact in floats.
        base = _solve(problem).objective
        assert _solve(variant.problem).objective == pytest.approx(
            variant.expected(base), rel=1e-12
        )

    def test_max_variants_sampling_is_deterministic(self):
        problem = generate_random_mip(5, 3, seed=2)
        names1 = [
            v.name
            for v in metamorphic_variants(
                problem, np.random.default_rng(7), max_variants=3
            )
        ]
        names2 = [
            v.name
            for v in metamorphic_variants(
                problem, np.random.default_rng(7), max_variants=3
            )
        ]
        assert names1 == names2 and len(names1) == 3


class TestCheckMetamorphic:
    def test_honest_solver_passes_all_variants(self):
        for seed in range(4):
            problem = generate_random_mip(6, 4, seed=seed, density=0.8)
            result = _solve(problem)
            report = check_metamorphic(
                problem, result, _solve, np.random.default_rng(seed)
            )
            assert report.ok, [(o.name, o.detail) for o in report.failures]
            assert len(report.outcomes) >= 5

    def test_objective_drifting_solver_is_caught(self):
        problem = generate_random_mip(6, 4, seed=5)
        base = _solve(problem)

        calls = {"n": 0}

        def drifting(p):
            # Honest on the base problem, lies on every variant re-solve.
            result = _solve(p)
            calls["n"] += 1
            result.objective += 0.25
            return result

        report = check_metamorphic(
            problem, base, drifting, np.random.default_rng(0)
        )
        assert not report.ok
        with pytest.raises(MetamorphicViolation):
            report.raise_for_failures()

    def test_non_optimal_base_yields_empty_report(self):
        problem = generate_random_mip(5, 3, seed=6)
        result = _solve(problem)
        result.x = None
        report = check_metamorphic(
            problem, result, _solve, np.random.default_rng(0)
        )
        assert report.outcomes == [] and report.ok
