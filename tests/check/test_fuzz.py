"""Fuzz harness tests, including the end-to-end acceptance scenario:
a corrupted solver is caught, shrunk, and the repro file replays."""

import numpy as np
import pytest

from repro.check import (
    FuzzOptions,
    load_repro,
    problem_from_dict,
    problem_to_dict,
    replay_repro,
    run_fuzz,
    save_repro,
)
from repro.check.fuzz import default_solve_fn
from repro.mip.problem import MIPProblem
from repro.problems.random_mip import generate_random_mip


class TestSerialize:
    def test_problem_roundtrip_with_infinities(self):
        problem = MIPProblem(
            c=np.array([1.0, -2.5, 0.125]),
            integer=np.array([True, False, True]),
            a_ub=np.array([[1.0, 2.0, 0.0]]),
            b_ub=np.array([4.0]),
            a_eq=np.array([[0.0, 1.0, 1.0]]),
            b_eq=np.array([2.0]),
            lb=np.array([0.0, -np.inf, 0.0]),
            ub=np.array([np.inf, 3.0, 1.0]),
            name="roundtrip",
        )
        back = problem_from_dict(problem_to_dict(problem))
        assert np.array_equal(back.c, problem.c)
        assert np.array_equal(back.integer, problem.integer)
        assert np.array_equal(back.a_ub, problem.a_ub)
        assert np.array_equal(back.a_eq, problem.a_eq)
        assert np.array_equal(back.lb, problem.lb)
        assert np.array_equal(back.ub, problem.ub)
        assert back.name == problem.name

    def test_save_load_repro(self, tmp_path):
        problem = generate_random_mip(5, 3, seed=0)
        path = tmp_path / "nested" / "case.json"
        save_repro(
            str(path),
            kind="certificate",
            problem=problem,
            seed=0,
            detail="unit test",
            original_shape=(5, 3),
        )
        doc = load_repro(str(path))
        assert doc["kind"] == "certificate"
        assert doc["seed"] == 0
        assert np.array_equal(doc["problem"].c, problem.c)

    def test_load_rejects_unknown_version(self, tmp_path):
        import json

        from repro.errors import ReproError

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 999}))
        with pytest.raises(ReproError):
            load_repro(str(path))


class TestRunFuzz:
    def test_clean_smoke_run(self, tmp_path):
        options = FuzzOptions(
            budget=8,
            seed=0,
            out_dir=str(tmp_path),
            metamorphic_variants=2,
            max_vars=6,
            max_rows=4,
        )
        report = run_fuzz(options)
        assert report.ok, [f.detail for f in report.failures]
        assert report.instances == 8
        assert report.total_checks > 0

    def test_corrupt_solver_caught_shrunk_and_replayable(self, tmp_path):
        """Acceptance criterion: perturbing the incumbent objective is caught
        by the certificate checker and produces a shrunk, replayable repro."""
        base = default_solve_fn()

        def corrupt(problem):
            result = base(problem)
            if result.objective is not None:
                result.objective += 0.5
            return result

        options = FuzzOptions(
            budget=3,
            seed=0,
            out_dir=str(tmp_path),
            differential=False,
            lp_differential=False,
            metamorphic=False,
            max_vars=6,
            max_rows=4,
        )
        report = run_fuzz(options, solve_fn=corrupt)
        assert not report.ok
        assert len(report.failures) == 3
        for failure in report.failures:
            assert failure.kind == "certificate"
            assert failure.repro_path is not None
            assert failure.shrunk_size <= failure.original_size

        # The repro file replays: still failing under the corrupt solver...
        first = report.failures[0]
        replay_bad = replay_repro(first.repro_path, solve_fn=corrupt)
        assert not replay_bad.ok
        # ...and passing under the honest solver.
        replay_good = replay_repro(first.repro_path, solve_fn=base)
        assert replay_good.ok

    def test_solver_exception_recorded_as_failure(self, tmp_path):
        from repro.errors import ReproError

        def broken(problem):
            raise ReproError("kernel panic")

        options = FuzzOptions(
            budget=2,
            seed=1,
            out_dir=str(tmp_path),
            shrink=False,
            differential=False,
            lp_differential=False,
            metamorphic=False,
        )
        report = run_fuzz(options, solve_fn=broken)
        assert not report.ok
        assert all(f.kind == "solver-error" for f in report.failures)

    def test_deterministic_across_runs(self, tmp_path):
        options = dict(
            budget=5,
            seed=7,
            metamorphic=False,
            differential=False,
            lp_differential=False,
            max_vars=6,
            max_rows=4,
        )
        r1 = run_fuzz(FuzzOptions(out_dir=str(tmp_path / "a"), **options))
        r2 = run_fuzz(FuzzOptions(out_dir=str(tmp_path / "b"), **options))
        assert r1.ok and r2.ok
        assert r1.total_checks == r2.total_checks
