"""Exact-arithmetic certificate tests: honest answers pass, lies fail."""

import numpy as np
import pytest

from repro.check import certify_lp_result, certify_mip_result, certify_mip_solution
from repro.errors import CertificateViolation
from repro.lp.simplex import solve_lp
from repro.mip.problem import MIPProblem
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.problems.random_mip import generate_random_mip


def _solved(problem):
    result = BranchAndBoundSolver(problem, SolverOptions()).solve()
    assert result.ok
    return result


class TestMIPCertificates:
    def test_honest_solutions_certify(self):
        for seed in range(6):
            problem = generate_random_mip(6, 4, seed=seed, density=0.8)
            result = _solved(problem)
            report = certify_mip_result(problem, result)
            assert report.ok, [c.name for c in report.failures]

    def test_knapsack_against_dp_reference(self):
        problem = generate_knapsack(14, seed=2)
        result = _solved(problem)
        expected, _ = knapsack_dp_optimal(problem)
        assert result.objective == pytest.approx(expected)
        assert certify_mip_result(problem, result).ok

    def test_perturbed_objective_is_caught(self):
        problem = generate_random_mip(6, 4, seed=1)
        result = _solved(problem)
        result.objective += 1e-3
        report = certify_mip_result(problem, result)
        assert not report.ok
        assert any(c.name == "objective" for c in report.failures)

    def test_infeasible_point_is_caught(self):
        problem = generate_random_mip(6, 4, seed=2)
        result = _solved(problem)
        x_bad = result.x.copy()
        x_bad[0] = problem.ub[0] + 1.0  # leaves the bound box
        report = certify_mip_solution(problem, x_bad)
        assert not report.ok
        assert any(c.name in ("bounds", "rows_ub") for c in report.failures)

    def test_fractional_integer_is_caught(self):
        problem = generate_random_mip(6, 4, seed=3)
        result = _solved(problem)
        j = int(np.nonzero(problem.integer)[0][0])
        x_bad = result.x.copy()
        x_bad[j] += 0.5 if x_bad[j] + 0.5 <= problem.ub[j] else -0.5
        report = certify_mip_solution(problem, x_bad)
        assert not report.ok
        assert any(c.name == "integrality" for c in report.failures)

    def test_dual_bound_below_objective_is_caught(self):
        problem = generate_random_mip(6, 4, seed=4)
        result = _solved(problem)
        report = certify_mip_solution(
            problem,
            result.x,
            objective=result.objective,
            best_bound=result.objective - 1.0,  # claims the optimum is impossible
        )
        assert not report.ok
        assert any(c.name == "dual_bound" for c in report.failures)

    def test_optimal_without_incumbent_is_a_violation(self):
        problem = generate_random_mip(4, 3, seed=5)
        result = _solved(problem)
        result.x = None
        report = certify_mip_result(problem, result)
        assert not report.ok

    def test_raise_for_failures(self):
        problem = generate_random_mip(5, 3, seed=6)
        result = _solved(problem)
        result.objective += 1.0
        report = certify_mip_result(problem, result)
        with pytest.raises(CertificateViolation) as info:
            report.raise_for_failures()
        assert info.value.check == "objective"
        certify_mip_result(problem, _solved(problem)).raise_for_failures()  # no-op

    def test_exactness_no_false_positive_at_scale(self):
        # Large coefficients: float residuals grow, the relative scaling
        # must keep honest answers certifiable.
        problem = MIPProblem(
            c=np.array([1e8, 1.0]),
            integer=np.array([True, False]),
            a_ub=np.array([[1e8, 1.0]]),
            b_ub=np.array([3e8]),
            lb=np.zeros(2),
            ub=np.array([5.0, 10.0]),
        )
        result = _solved(problem)
        assert certify_mip_result(problem, result).ok


class TestLPCertificates:
    def test_simplex_result_gets_full_duality_certificate(self):
        problem = generate_random_mip(6, 4, seed=7)
        lp = problem.relaxation()
        result = solve_lp(lp)
        report = certify_lp_result(lp, result)
        assert report.ok
        names = {c.name for c in report.checks}
        assert "dual_feasibility" in names and "strong_duality" in names

    def test_lp_objective_lie_is_caught(self):
        lp = generate_random_mip(6, 4, seed=8).relaxation()
        result = solve_lp(lp)
        result.objective += 1e-2
        report = certify_lp_result(lp, result)
        assert not report.ok

    def test_non_optimal_statuses_are_vacuously_ok(self):
        lp = generate_random_mip(4, 2, seed=9).relaxation()
        result = solve_lp(lp)
        result.x = None
        from repro.lp.result import LPStatus

        result.status = LPStatus.ITERATION_LIMIT
        assert certify_lp_result(lp, result).ok
