"""Satellite: property-based PDHG-vs-simplex agreement (hypothesis).

For *any* generated LP with a planted feasible point, restarted PDHG at
eps=1e-8 must agree with the exact simplex optimum well inside the
differential tolerance; for constructed infeasible/unbounded families
the Farkas-ray detector must return the same status the vertex solver
proves.  Integer-grid data keeps every instance exactly representable.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lp.pdhg import PDHGOptions, solve_lp_pdhg
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

coeff = st.integers(min_value=-3, max_value=3)
cost = st.integers(min_value=-5, max_value=5)


@st.composite
def feasible_lps(draw):
    """Random integer-grid LP made feasible by planting x0 inside it."""
    n = draw(st.integers(min_value=2, max_value=4))
    m = draw(st.integers(min_value=1, max_value=4))
    a = np.array(
        draw(
            st.lists(
                st.lists(coeff, min_size=n, max_size=n), min_size=m, max_size=m
            )
        ),
        dtype=float,
    )
    c = np.array(draw(st.lists(cost, min_size=n, max_size=n)), dtype=float)
    x0 = np.array(
        draw(st.lists(st.integers(min_value=0, max_value=3), min_size=n, max_size=n)),
        dtype=float,
    )
    slack = np.array(
        draw(st.lists(st.integers(min_value=1, max_value=5), min_size=m, max_size=m)),
        dtype=float,
    )
    # b = A x0 + positive slack: x0 is strictly feasible, and the box
    # 0 ≤ x ≤ 6 keeps every instance bounded.
    return LinearProgram(c=c, a_ub=a, b_ub=a @ x0 + slack, ub=np.full(n, 6.0))


@st.composite
def infeasible_lps(draw):
    """a·x ≤ b together with a·x ≥ b + gap: empty by construction."""
    n = draw(st.integers(min_value=1, max_value=3))
    a = np.array(
        draw(
            st.lists(coeff, min_size=n, max_size=n).filter(lambda r: any(r))
        ),
        dtype=float,
    )
    b = float(draw(st.integers(min_value=-3, max_value=3)))
    gap = float(draw(st.integers(min_value=1, max_value=4)))
    c = np.array(draw(st.lists(cost, min_size=n, max_size=n)), dtype=float)
    return LinearProgram(
        c=c,
        a_ub=np.vstack([a, -a]),
        b_ub=np.array([b, -(b + gap)]),
        ub=np.full(n, 3.0),
    )


@st.composite
def unbounded_lps(draw):
    """Nonnegative rows written as lower bounds, positive cost: max = ∞."""
    n = draw(st.integers(min_value=1, max_value=3))
    m = draw(st.integers(min_value=1, max_value=3))
    a = np.array(
        draw(
            st.lists(
                st.lists(st.integers(min_value=0, max_value=3), min_size=n, max_size=n),
                min_size=m,
                max_size=m,
            )
        ),
        dtype=float,
    )
    c = np.array(
        draw(
            st.lists(st.integers(min_value=0, max_value=5), min_size=n, max_size=n)
            .filter(lambda v: any(v))
        ),
        dtype=float,
    )
    b = np.array(
        draw(st.lists(st.integers(min_value=0, max_value=4), min_size=m, max_size=m)),
        dtype=float,
    )
    # −A x ≤ b with A ≥ 0 only bounds x from below; any c_j > 0 escapes.
    return LinearProgram(c=c, a_ub=-a, b_ub=b, ub=np.full(n, np.inf))


class TestPDHGProperties:
    @SLOW
    @given(feasible_lps())
    def test_objective_agrees_with_simplex(self, lp):
        ref = solve_lp(lp)
        assert ref.status is LPStatus.OPTIMAL  # feasible + boxed = solvable
        res = solve_lp_pdhg(lp, PDHGOptions(tolerance=1e-8))
        assert res.status is LPStatus.OPTIMAL
        scale = 1.0 + abs(ref.objective)
        assert abs(res.objective - ref.objective) <= 1e-5 * scale

    @SLOW
    @given(infeasible_lps())
    def test_infeasibility_detection_matches(self, lp):
        assert solve_lp(lp).status is LPStatus.INFEASIBLE
        res = solve_lp_pdhg(lp)
        assert res.status is LPStatus.INFEASIBLE

    @SLOW
    @given(unbounded_lps())
    def test_unboundedness_detection_matches(self, lp):
        assert solve_lp(lp).status is LPStatus.UNBOUNDED
        res = solve_lp_pdhg(lp)
        assert res.status is LPStatus.UNBOUNDED
