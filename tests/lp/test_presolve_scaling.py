"""Presolve and scaling tests."""

import numpy as np
import pytest

from repro.lp.presolve import PresolveStatus, presolve
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.scaling import equilibrate
from repro.lp.simplex import solve_lp


class TestPresolve:
    def test_fixed_variable_substituted(self):
        lp = LinearProgram(
            c=[1.0, 2.0],
            a_ub=[[1.0, 1.0]],
            b_ub=[5.0],
            lb=[3.0, 0.0],
            ub=[3.0, 10.0],
        )
        res = presolve(lp)
        assert res.status is PresolveStatus.REDUCED
        assert res.lp.n == 1
        assert res.fixed_objective == pytest.approx(3.0)
        # Remaining constraint: x1 <= 2.
        np.testing.assert_allclose(res.lp.b_ub, [2.0])

    def test_postsolve_reconstructs_solution(self):
        lp = LinearProgram(
            c=[1.0, 2.0],
            a_ub=[[1.0, 1.0]],
            b_ub=[5.0],
            lb=[3.0, 0.0],
            ub=[3.0, 10.0],
        )
        res = presolve(lp)
        inner = solve_lp(res.lp)
        x = res.postsolve(inner.x)
        assert x[0] == pytest.approx(3.0)
        assert x[1] == pytest.approx(2.0)
        total = res.fixed_objective + inner.objective
        assert total == pytest.approx(solve_lp(lp).objective)

    def test_singleton_row_tightens_bound(self):
        lp = LinearProgram(c=[1.0, 1.0], a_ub=[[2.0, 0.0]], b_ub=[4.0], ub=[10.0, 1.0])
        res = presolve(lp)
        assert res.status is PresolveStatus.REDUCED
        assert res.lp.ub[0] == pytest.approx(2.0)
        assert res.lp.num_ub_rows == 0

    def test_empty_infeasible_row(self):
        lp = LinearProgram(c=[1.0], a_ub=[[0.0]], b_ub=[-1.0], ub=[1.0])
        assert presolve(lp).status is PresolveStatus.INFEASIBLE

    def test_crossed_bounds_after_tightening(self):
        # Singleton row forces x <= -1 but lb = 0.
        lp = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[-1.0], ub=[5.0])
        assert presolve(lp).status is PresolveStatus.INFEASIBLE

    def test_all_fixed_solved(self):
        lp = LinearProgram(c=[1.0, 1.0], lb=[2.0, 3.0], ub=[2.0, 3.0])
        res = presolve(lp)
        assert res.status is PresolveStatus.SOLVED
        np.testing.assert_allclose(res.postsolve(np.zeros(0)), [2.0, 3.0])
        assert res.fixed_objective == pytest.approx(5.0)

    def test_all_fixed_infeasible(self):
        lp = LinearProgram(
            c=[1.0], lb=[2.0], ub=[2.0], a_ub=[[1.0]], b_ub=[1.0]
        )
        assert presolve(lp).status is PresolveStatus.INFEASIBLE

    def test_presolve_preserves_optimum(self):
        rng = np.random.default_rng(5)
        n, m = 8, 5
        lb = np.zeros(n)
        ub = np.full(n, 6.0)
        lb[2] = ub[2] = 1.5  # one fixed variable
        lp = LinearProgram(
            c=rng.standard_normal(n),
            a_ub=rng.standard_normal((m, n)),
            b_ub=rng.random(m) * 5 + 2,
            lb=lb,
            ub=ub,
        )
        direct = solve_lp(lp)
        res = presolve(lp)
        assert res.status is PresolveStatus.REDUCED
        inner = solve_lp(res.lp)
        assert inner.status is LPStatus.OPTIMAL
        assert res.fixed_objective + inner.objective == pytest.approx(
            direct.objective, abs=1e-6
        )


class TestScaling:
    def test_badly_scaled_matrix_improves(self):
        # A matrix whose bad scaling is purely diagonal (fully fixable).
        rng = np.random.default_rng(0)
        core = rng.random((4, 4)) + 0.5
        a = np.diag([1e6, 1.0, 1e-4, 1e2]) @ core @ np.diag([1e3, 1e-5, 1.0, 1e4])
        res = equilibrate(a)
        nz = np.abs(res.scaled[res.scaled != 0])
        original = np.abs(a[a != 0])
        assert nz.max() / nz.min() < 1e3
        assert (nz.max() / nz.min()) < (original.max() / original.min()) / 1e6

    def test_scaling_consistent_solve(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((4, 4)) * np.array([1e4, 1.0, 1e-3, 10.0])
        a += 5 * np.eye(4)
        x_true = rng.standard_normal(4)
        b = a @ x_true
        res = equilibrate(a)
        x_scaled = np.linalg.solve(res.scaled, res.apply_rhs(b))
        np.testing.assert_allclose(res.recover_x(x_scaled), x_true, atol=1e-8)

    def test_identity_untouched(self):
        res = equilibrate(np.eye(3))
        np.testing.assert_allclose(res.scaled, np.eye(3))
        np.testing.assert_allclose(res.row_scale, np.ones(3))

    def test_zero_rows_survive(self):
        a = np.array([[0.0, 0.0], [1.0, 2.0]])
        res = equilibrate(a)
        assert np.all(np.isfinite(res.scaled))
