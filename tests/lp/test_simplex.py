"""Revised simplex tests, cross-checked against scipy.optimize.linprog.

scipy is the oracle only — the solver under test shares no code with it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import SimplexOptions, solve_lp


def scipy_solve(lp: LinearProgram):
    """Oracle solve (scipy minimizes, we maximize)."""
    bounds = [
        (lo if np.isfinite(lo) else None, hi if np.isfinite(hi) else None)
        for lo, hi in zip(lp.lb, lp.ub)
    ]
    return linprog(
        -lp.c,
        A_ub=lp.a_ub,
        b_ub=lp.b_ub,
        A_eq=lp.a_eq,
        b_eq=lp.b_eq,
        bounds=bounds,
        method="highs",
    )


def assert_matches_oracle(lp: LinearProgram, atol=1e-6):
    ours = solve_lp(lp)
    oracle = scipy_solve(lp)
    if oracle.status == 0:
        assert ours.status is LPStatus.OPTIMAL, f"expected optimal, got {ours.status}"
        assert ours.objective == pytest.approx(-oracle.fun, abs=atol, rel=1e-6)
        # Solution feasibility in the original space.
        x = ours.x
        if lp.a_ub is not None:
            assert np.all(lp.a_ub @ x <= lp.b_ub + 1e-6)
        if lp.a_eq is not None:
            np.testing.assert_allclose(lp.a_eq @ x, lp.b_eq, atol=1e-6)
        assert np.all(x >= lp.lb - 1e-6)
        assert np.all(x <= lp.ub + 1e-6)
    elif oracle.status == 2:
        assert ours.status is LPStatus.INFEASIBLE
    elif oracle.status == 3:
        assert ours.status is LPStatus.UNBOUNDED
    return ours


class TestTextbookCases:
    def test_two_variable_max(self):
        # max 3x + 2y st x + y <= 4, x + 3y <= 6 -> (4, 0), obj 12.
        lp = LinearProgram(
            c=[3.0, 2.0], a_ub=[[1.0, 1.0], [1.0, 3.0]], b_ub=[4.0, 6.0]
        )
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(12.0)
        np.testing.assert_allclose(res.x, [4.0, 0.0], atol=1e-8)

    def test_degenerate_lp(self):
        # Multiple constraints meet at the optimum.
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_ub=[[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]],
            b_ub=[1.0, 1.0, 2.0],
        )
        res = solve_lp(lp)
        assert res.objective == pytest.approx(2.0)

    def test_infeasible(self):
        lp = LinearProgram(c=[1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -3.0])
        assert solve_lp(lp).status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram(c=[1.0, 0.0], a_ub=[[0.0, 1.0]], b_ub=[1.0])
        assert solve_lp(lp).status is LPStatus.UNBOUNDED

    def test_equality_constraints(self):
        # max x + y st x + y = 3, x <= 2 -> obj 3.
        lp = LinearProgram(
            c=[1.0, 1.0], a_eq=[[1.0, 1.0]], b_eq=[3.0], ub=[2.0, np.inf]
        )
        res = solve_lp(lp)
        assert res.objective == pytest.approx(3.0)

    def test_negative_lower_bounds(self):
        lp = LinearProgram(
            c=[-1.0], lb=[-5.0], ub=[5.0], a_ub=[[1.0]], b_ub=[3.0]
        )
        res = solve_lp(lp)
        assert res.objective == pytest.approx(5.0)
        assert res.x[0] == pytest.approx(-5.0)

    def test_free_variable(self):
        lp = LinearProgram(
            c=[1.0, 0.0],
            lb=[-np.inf, 0.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[-2.0],
            ub=[np.inf, 10.0],
        )
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(-2.0 - 0.0)
        # x0 = -2 - x1; max x0 means x1 = 0.
        assert res.x[0] == pytest.approx(-2.0)

    def test_redundant_rows(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_eq=[[1.0, 1.0], [2.0, 2.0]],
            b_eq=[2.0, 4.0],
        )
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0)

    def test_zero_objective(self):
        lp = LinearProgram(c=[0.0, 0.0], a_ub=[[1.0, 1.0]], b_ub=[1.0])
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)

    def test_duals_available(self):
        lp = LinearProgram(c=[3.0, 2.0], a_ub=[[1.0, 1.0]], b_ub=[4.0])
        res = solve_lp(lp)
        assert res.duals is not None
        # One binding row: dual equals the larger cost.
        assert res.duals[0] == pytest.approx(3.0)


class TestRandomVsOracle:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_inequality_lps(self, seed):
        rng = np.random.default_rng(seed)
        m, n = rng.integers(2, 9), rng.integers(2, 9)
        lp = LinearProgram(
            c=rng.standard_normal(n),
            a_ub=rng.standard_normal((m, n)),
            b_ub=rng.random(m) * 5 + 0.5,  # origin feasible
            ub=np.full(n, 10.0),
        )
        assert_matches_oracle(lp)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_mixed_lps(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(3, 8))
        m_ub = int(rng.integers(1, 5))
        m_eq = int(rng.integers(1, 3))
        x_feas = rng.random(n)
        a_ub = rng.standard_normal((m_ub, n))
        a_eq = rng.standard_normal((m_eq, n))
        lp = LinearProgram(
            c=rng.standard_normal(n),
            a_ub=a_ub,
            b_ub=a_ub @ x_feas + rng.random(m_ub) + 0.1,
            a_eq=a_eq,
            b_eq=a_eq @ x_feas,
            ub=np.full(n, 20.0),
        )
        assert_matches_oracle(lp)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_infeasible(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(2, 6))
        row = rng.random(n) + 0.1
        lp = LinearProgram(
            c=rng.standard_normal(n),
            a_ub=np.vstack([row, -row]),
            b_ub=np.array([1.0, -2.0]),  # row@x <= 1 and >= 2
            ub=np.full(n, 100.0),
        )
        assert solve_lp(lp).status is LPStatus.INFEASIBLE


class TestPricingRules:
    @pytest.mark.parametrize("pricing", ["dantzig", "devex", "bland"])
    def test_all_rules_reach_optimum(self, pricing):
        rng = np.random.default_rng(7)
        n, m = 10, 8
        lp = LinearProgram(
            c=rng.standard_normal(n),
            a_ub=rng.standard_normal((m, n)),
            b_ub=rng.random(m) * 4 + 1,
            ub=np.full(n, 10.0),
        )
        baseline = solve_lp(lp)
        res = solve_lp(lp, SimplexOptions(pricing=pricing))
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(baseline.objective, rel=1e-7)

    def test_unknown_pricing_rejected(self):
        lp = LinearProgram(c=[1.0], ub=[1.0])
        with pytest.raises(ValueError):
            solve_lp(lp, SimplexOptions(pricing="nope"))


class TestRefactorization:
    @pytest.mark.parametrize("interval", [1, 4, 1000])
    def test_interval_does_not_change_answer(self, interval):
        rng = np.random.default_rng(11)
        n, m = 12, 10
        lp = LinearProgram(
            c=rng.standard_normal(n),
            a_ub=rng.standard_normal((m, n)),
            b_ub=rng.random(m) * 4 + 1,
            ub=np.full(n, 10.0),
        )
        res = solve_lp(lp, SimplexOptions(refactor_interval=interval))
        baseline = solve_lp(lp)
        assert res.objective == pytest.approx(baseline.objective, rel=1e-7)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=1, max_value=7),
    n=st.integers(min_value=1, max_value=7),
)
def test_property_simplex_matches_scipy(seed, m, n):
    """On random bounded-feasible LPs, objective matches the oracle."""
    rng = np.random.default_rng(seed)
    lp = LinearProgram(
        c=rng.standard_normal(n),
        a_ub=rng.standard_normal((m, n)),
        b_ub=rng.random(m) * 3 + 0.2,
        ub=np.full(n, 8.0),
    )
    assert_matches_oracle(lp)
