"""Sensitivity analysis and reduced-cost fixing tests."""

import numpy as np
import pytest

from repro.errors import LPError
from repro.lp.problem import LinearProgram
from repro.lp.sensitivity import analyze, reduced_cost_fixing
from repro.lp.simplex import solve_standard_form
from repro.mip.cuts.gomory import standard_integer_mask
from repro.problems.knapsack import generate_knapsack


def solved(lp):
    sf = lp.to_standard_form()
    res = solve_standard_form(sf)
    assert res.ok
    return sf, res


class TestAnalyze:
    def test_reduced_costs_nonpositive_at_optimum(self):
        rng = np.random.default_rng(0)
        lp = LinearProgram(
            c=rng.standard_normal(6),
            a_ub=rng.standard_normal((4, 6)),
            b_ub=rng.random(4) * 3 + 1,
            ub=np.full(6, 10.0),
        )
        sf, res = solved(lp)
        report = analyze(sf, res)
        assert np.all(report.reduced_costs <= 1e-7)
        np.testing.assert_allclose(
            report.reduced_costs[res.basis], 0.0, atol=1e-9
        )

    def test_rhs_ranging_contains_zero(self):
        lp = LinearProgram(c=[3.0, 2.0], a_ub=[[1.0, 1.0], [1.0, 3.0]], b_ub=[4.0, 6.0])
        sf, res = solved(lp)
        report = analyze(sf, res)
        for lo, hi in report.rhs_ranges:
            assert lo <= 1e-9 and hi >= -1e-9

    def test_rhs_ranging_predicts_objective_change(self):
        """Inside the range, objective moves linearly with slope = dual."""
        lp = LinearProgram(c=[3.0, 2.0], a_ub=[[1.0, 1.0], [1.0, 3.0]], b_ub=[4.0, 6.0])
        sf, res = solved(lp)
        report = analyze(sf, res)
        i = 0
        lo, hi = report.rhs_ranges[i]
        t = min(hi, 0.5) / 2 if np.isfinite(hi) else 0.25
        perturbed = LinearProgram(
            c=[3.0, 2.0], a_ub=[[1.0, 1.0], [1.0, 3.0]], b_ub=[4.0 + t, 6.0]
        )
        _, res2 = solved(perturbed)
        predicted = res.objective + report.duals[i] * t
        assert res2.objective == pytest.approx(predicted, abs=1e-7)

    def test_cost_ranging_nonbasic(self):
        """Raising a nonbasic cost past its range makes it enter."""
        lp = LinearProgram(c=[3.0, 2.0], a_ub=[[1.0, 1.0], [1.0, 3.0]], b_ub=[4.0, 6.0])
        sf, res = solved(lp)
        report = analyze(sf, res)
        nonbasic = [
            j
            for j in range(sf.n)
            if j not in set(res.basis.tolist()) and np.isfinite(report.cost_ranges[j][1])
        ]
        assert nonbasic
        for j in nonbasic:
            _, allow_up = report.cost_ranges[j]
            assert allow_up >= -1e-9

    def test_requires_basis(self):
        lp = LinearProgram(c=[1.0], ub=[1.0])
        sf = lp.to_standard_form()
        from repro.lp.result import LPResult, LPStatus

        fake = LPResult(status=LPStatus.OPTIMAL, objective=1.0)
        with pytest.raises(LPError):
            analyze(sf, fake)


class TestReducedCostFixing:
    def test_fixes_hopeless_items(self):
        """With a strong incumbent, low-value knapsack items get fixed."""
        p = generate_knapsack(20, seed=1)
        sf = p.relaxation().to_standard_form()
        res = solve_standard_form(sf)
        int_cols = np.nonzero(standard_integer_mask(p, sf))[0]
        # Incumbent equal to the LP bound - epsilon: tightest possible.
        fixed = reduced_cost_fixing(sf, res, res.objective - 1e-6, int_cols)
        # Fixing must never cut off the true optimum.
        from repro.problems.knapsack import knapsack_dp_optimal

        best, x_opt = knapsack_dp_optimal(p)
        if best >= res.objective - 1e-6:
            for j in fixed:
                orig = int(np.nonzero(sf.pos_col == j)[0][0])
                assert x_opt[orig] == 0.0

    def test_weak_incumbent_fixes_nothing_extra(self):
        p = generate_knapsack(15, seed=2)
        sf = p.relaxation().to_standard_form()
        res = solve_standard_form(sf)
        int_cols = np.nonzero(standard_integer_mask(p, sf))[0]
        strong = reduced_cost_fixing(sf, res, res.objective - 0.5, int_cols)
        weak = reduced_cost_fixing(sf, res, res.objective - 1e9, int_cols)
        assert set(weak) <= set(strong)
