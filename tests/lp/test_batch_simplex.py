"""Lockstep batched simplex tests (paper §5.5)."""

import numpy as np
import pytest

from repro.errors import LPError, ShapeError
from repro.lp.batch_simplex import solve_lp_batch
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp


def random_batch(k, m, n, seed):
    rng = np.random.default_rng(seed)
    lps = []
    for _ in range(k):
        lps.append(
            LinearProgram(
                c=rng.standard_normal(n),
                a_ub=rng.standard_normal((m, n)),
                b_ub=rng.random(m) * 4 + 0.5,
                ub=np.full(n, 10.0),
            )
        )
    return lps


class TestBatchedSimplex:
    @pytest.mark.parametrize("k,m,n", [(1, 3, 4), (8, 4, 5), (32, 3, 3), (64, 6, 8)])
    def test_matches_sequential_revised_simplex(self, k, m, n):
        lps = random_batch(k, m, n, seed=k + m + n)
        batch = solve_lp_batch(lps)
        for t, lp in enumerate(lps):
            single = solve_lp(lp)
            assert batch.statuses[t] is single.status
            if single.status is LPStatus.OPTIMAL:
                assert batch.objectives[t] == pytest.approx(
                    single.objective, abs=1e-6
                )

    def test_unbounded_member_detected(self):
        good = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[2.0], ub=[np.inf])
        bad = LinearProgram(c=[1.0], a_ub=[[-1.0]], b_ub=[2.0], ub=[np.inf])
        res = solve_lp_batch([good, bad])
        assert res.statuses[0] is LPStatus.OPTIMAL
        assert res.statuses[1] is LPStatus.UNBOUNDED
        assert res.objectives[0] == pytest.approx(2.0)

    def test_members_finish_at_different_iterations(self):
        # Same shape, but the first member is optimal at the start
        # (all costs negative) while the second needs pivots.
        busy = random_batch(1, 6, 8, seed=3)[0]
        trivial = LinearProgram(
            c=-np.abs(busy.c) - 1.0,
            a_ub=busy.a_ub,
            b_ub=busy.b_ub,
            ub=busy.ub,
        )
        res = solve_lp_batch([trivial, busy])
        assert res.all_ok
        assert res.objectives[0] == pytest.approx(0.0)
        assert res.iterations > 0

    def test_solutions_feasible(self):
        lps = random_batch(16, 5, 6, seed=9)
        res = solve_lp_batch(lps)
        for t, lp in enumerate(lps):
            if res.statuses[t] is LPStatus.OPTIMAL:
                x = res.x[t]
                assert np.all(lp.a_ub @ x <= lp.b_ub + 1e-7)
                assert np.all(x >= -1e-9)
                assert np.all(x <= lp.ub + 1e-7)

    def test_on_iteration_hook_called(self):
        calls = []
        lps = random_batch(4, 3, 4, seed=1)
        solve_lp_batch(lps, on_iteration=lambda k, m, n: calls.append((k, m, n)))
        assert calls
        assert all(c[0] <= 4 for c in calls)

    def test_shape_mismatch_rejected(self):
        a = random_batch(1, 3, 4, seed=0)[0]
        b = random_batch(1, 4, 4, seed=0)[0]
        with pytest.raises(ShapeError):
            solve_lp_batch([a, b])

    def test_empty_batch_rejected(self):
        with pytest.raises(LPError):
            solve_lp_batch([])

    def test_negative_rhs_rejected(self):
        lp = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[-1.0], ub=[2.0])
        with pytest.raises(LPError):
            solve_lp_batch([lp])

    def test_equality_rows_rejected(self):
        lp = LinearProgram(c=[1.0], a_eq=[[1.0]], b_eq=[1.0], ub=[2.0])
        with pytest.raises(LPError):
            solve_lp_batch([lp])
