"""LP solver edge cases: empty problems, limits, degenerate structure."""

import numpy as np
import pytest

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPStatus
from repro.lp.simplex import SimplexOptions, solve_lp, solve_standard_form


class TestEmptyAndTrivial:
    def test_no_constraints_bounded_by_ub(self):
        lp = LinearProgram(c=[2.0, -1.0], ub=[3.0, 5.0])
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(6.0)

    def test_no_constraints_unbounded(self):
        lp = LinearProgram(c=[1.0])  # ub defaults to +inf
        res = solve_lp(lp)
        assert res.status is LPStatus.UNBOUNDED

    def test_no_constraints_all_negative_costs(self):
        lp = LinearProgram(c=[-1.0, -2.0])
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)

    def test_single_variable_single_row(self):
        lp = LinearProgram(c=[1.0], a_ub=[[2.0]], b_ub=[5.0])
        res = solve_lp(lp)
        assert res.objective == pytest.approx(2.5)

    def test_zero_rhs(self):
        lp = LinearProgram(c=[1.0, 1.0], a_ub=[[1.0, -1.0]], b_ub=[0.0], ub=[2.0, 2.0])
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(4.0)


class TestIterationLimit:
    def test_limit_reported(self):
        rng = np.random.default_rng(0)
        n, m = 12, 10
        lp = LinearProgram(
            c=rng.standard_normal(n),
            a_ub=rng.standard_normal((m, n)),
            b_ub=rng.random(m) * 4 + 1,
            ub=np.full(n, 10.0),
        )
        res = solve_lp(lp, SimplexOptions(max_iterations=1))
        assert res.status is LPStatus.ITERATION_LIMIT


class TestDegenerateStructure:
    def test_many_redundant_parallel_rows(self):
        # Twenty copies of the same constraint.
        row = np.array([1.0, 2.0])
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_ub=np.tile(row, (20, 1)),
            b_ub=np.full(20, 4.0),
            ub=[10.0, 10.0],
        )
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(4.0)

    def test_highly_degenerate_vertex(self):
        # All constraints tight at the optimum (0, 0)... maximize -x-y.
        lp = LinearProgram(
            c=[-1.0, -1.0],
            a_ub=[[1.0, 0.0], [0.0, 1.0], [1.0, 1.0], [2.0, 1.0]],
            b_ub=[0.0, 0.0, 0.0, 0.0],
            ub=[5.0, 5.0],
        )
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)

    def test_equality_only_square_system(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        x_true = np.array([1.0, 2.0])
        lp = LinearProgram(
            c=[0.0, 0.0], a_eq=a, b_eq=a @ x_true, ub=[10.0, 10.0]
        )
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        np.testing.assert_allclose(res.x, x_true, atol=1e-8)

    def test_tiny_coefficients(self):
        lp = LinearProgram(
            c=[1.0], a_ub=[[1e-7]], b_ub=[1e-6], ub=[100.0]
        )
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(10.0)


class TestStandardFormEdge:
    def test_empty_standard_form_rows(self):
        sf = StandardFormLP(
            c=np.array([-1.0]),
            a=np.zeros((0, 1)),
            b=np.zeros(0),
            num_structural=1,
            pos_col=np.array([0]),
            neg_col=np.array([-1]),
            shift=np.zeros(1),
        )
        res = solve_standard_form(sf)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)

    def test_appended_rows_roundtrip(self):
        lp = LinearProgram(c=[1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[4.0])
        sf = lp.to_standard_form()
        grown = sf.with_appended_rows(
            np.array([[1.0, 0.0, 0.0]]), np.array([1.5])
        )
        res = solve_standard_form(grown)
        assert res.status is LPStatus.OPTIMAL
        # x0 now capped at 1.5: optimum 1.5 + 2.5 = 4.
        assert res.objective == pytest.approx(4.0)
        x = grown.recover_x(res.x_standard)
        assert x[0] <= 1.5 + 1e-9

    def test_appended_rows_shape_check(self):
        from repro.errors import ProblemFormatError

        lp = LinearProgram(c=[1.0], ub=[1.0])
        sf = lp.to_standard_form()
        with pytest.raises(ProblemFormatError):
            sf.with_appended_rows(np.ones((1, 99)), np.ones(1))
