"""Dual simplex warm-restart tests: the §5.2/§5.3 reuse engine."""

import numpy as np
import pytest

from repro.errors import LPError
from repro.lp.dual_simplex import dual_simplex_resolve
from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp, solve_standard_form


def append_row(sf: StandardFormLP, row: np.ndarray, rhs: float) -> StandardFormLP:
    """Standard-form copy with one extra ≤-row (and its slack column)."""
    m, n = sf.a.shape
    a = np.zeros((m + 1, n + 1))
    a[:m, :n] = sf.a
    a[m, :n] = row
    a[m, n] = 1.0
    b = np.concatenate([sf.b, [rhs]])
    c = np.concatenate([sf.c, [0.0]])
    return StandardFormLP(
        c=c,
        a=a,
        b=b,
        offset=sf.offset,
        num_structural=sf.num_structural,
        pos_col=sf.pos_col,
        neg_col=sf.neg_col,
        shift=sf.shift,
    )


def make_lp(seed, m=6, n=8):
    rng = np.random.default_rng(seed)
    return LinearProgram(
        c=rng.standard_normal(n) + 0.5,
        a_ub=rng.standard_normal((m, n)),
        b_ub=rng.random(m) * 4 + 1,
        ub=np.full(n, 10.0),
    )


class TestWarmRestart:
    @pytest.mark.parametrize("seed", range(8))
    def test_cut_row_reoptimization_matches_cold(self, seed):
        lp = make_lp(seed)
        sf = lp.to_standard_form()
        base = solve_standard_form(sf)
        assert base.status is LPStatus.OPTIMAL

        # A valid "cut": any row the optimum violates slightly.
        rng = np.random.default_rng(seed + 999)
        row = rng.standard_normal(sf.n)
        rhs = float(row @ base.x_standard) - 0.5  # cuts off the optimum
        grown = append_row(sf, row, rhs)

        warm_basis = np.concatenate([base.basis, [sf.n]])  # new slack basic
        warm = dual_simplex_resolve(grown, warm_basis)
        cold = solve_standard_form(grown)
        assert warm.status == cold.status
        if cold.status is LPStatus.OPTIMAL:
            assert warm.objective == pytest.approx(cold.objective, abs=1e-6)

    @pytest.mark.parametrize("seed", range(8))
    def test_non_binding_row_is_free(self, seed):
        """Appending a slack row the optimum satisfies needs 0 pivots."""
        lp = make_lp(seed)
        sf = lp.to_standard_form()
        base = solve_standard_form(sf)
        row = np.zeros(sf.n)
        row[0] = 1.0
        rhs = float(base.x_standard[0]) + 100.0
        grown = append_row(sf, row, rhs)
        warm = dual_simplex_resolve(grown, np.concatenate([base.basis, [sf.n]]))
        assert warm.status is LPStatus.OPTIMAL
        assert warm.iterations == 0
        assert warm.objective == pytest.approx(base.objective, abs=1e-7)

    def test_infeasible_after_contradictory_cut(self):
        lp = LinearProgram(c=[1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[4.0])
        sf = lp.to_standard_form()
        base = solve_standard_form(sf)
        # x0 + x1 >= 10 contradicts x0 + x1 <= 4.
        row = np.zeros(sf.n)
        row[0] = -1.0
        row[1] = -1.0
        grown = append_row(sf, row, -10.0)
        warm = dual_simplex_resolve(grown, np.concatenate([base.basis, [sf.n]]))
        assert warm.status is LPStatus.INFEASIBLE

    def test_chained_cuts(self):
        """Several successive cut rounds, each warm-started."""
        lp = make_lp(42)
        sf = lp.to_standard_form()
        res = solve_standard_form(sf)
        rng = np.random.default_rng(4242)
        for _ in range(4):
            row = rng.standard_normal(sf.n)
            rhs = float(row @ res.x_standard) - 0.2
            sf = append_row(sf, row, rhs)
            basis = np.concatenate([res.basis, [sf.n - 1]])
            res = dual_simplex_resolve(sf, basis)
            if res.status is not LPStatus.OPTIMAL:
                break
            cold = solve_standard_form(sf)
            assert res.objective == pytest.approx(cold.objective, abs=1e-6)


class TestValidation:
    def test_wrong_basis_size(self):
        sf = make_lp(1).to_standard_form()
        with pytest.raises(LPError):
            dual_simplex_resolve(sf, np.array([0]))

    def test_out_of_range_basis(self):
        sf = make_lp(1).to_standard_form()
        bad = np.full(sf.m, sf.n + 5)
        with pytest.raises(LPError):
            dual_simplex_resolve(sf, bad)

    def test_repeated_basis_columns(self):
        sf = make_lp(1).to_standard_form()
        bad = np.zeros(sf.m, dtype=np.int64)
        with pytest.raises(LPError):
            dual_simplex_resolve(sf, bad)

    def test_singular_basis(self):
        lp = LinearProgram(
            c=[1.0, 1.0], a_ub=[[1.0, 1.0], [2.0, 2.0]], b_ub=[1.0, 2.0]
        )
        sf = lp.to_standard_form()
        # Columns 0 and 1 are linearly dependent rows-wise? Build a
        # deliberately singular basis of structural columns.
        with pytest.raises(LPError):
            dual_simplex_resolve(sf, np.array([0, 1]))

    def test_primal_optimal_basis_accepted(self):
        lp = make_lp(3)
        sf = lp.to_standard_form()
        base = solve_standard_form(sf)
        res = dual_simplex_resolve(sf, base.basis)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(base.objective, abs=1e-8)
        assert res.iterations == 0
