"""Interior-point method tests against the simplex and scipy."""

import numpy as np
import pytest

from repro.lp.interior_point import IPMOptions, interior_point_solve
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp


def make_bounded_lp(seed, m=6, n=8):
    rng = np.random.default_rng(seed)
    return LinearProgram(
        c=rng.standard_normal(n),
        a_ub=rng.standard_normal((m, n)),
        b_ub=rng.random(m) * 4 + 1,
        ub=np.full(n, 10.0),
    )


class TestIPM:
    def test_textbook(self):
        lp = LinearProgram(
            c=[3.0, 2.0], a_ub=[[1.0, 1.0], [1.0, 3.0]], b_ub=[4.0, 6.0]
        )
        res = interior_point_solve(lp.to_standard_form())
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(12.0, abs=1e-5)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_simplex_on_random_lps(self, seed):
        lp = make_bounded_lp(seed)
        simplex = solve_lp(lp)
        assert simplex.status is LPStatus.OPTIMAL
        ipm = interior_point_solve(lp.to_standard_form())
        assert ipm.status is LPStatus.OPTIMAL
        assert ipm.objective == pytest.approx(simplex.objective, abs=1e-4, rel=1e-5)

    def test_solution_is_feasible(self):
        lp = make_bounded_lp(3)
        sf = lp.to_standard_form()
        res = interior_point_solve(sf)
        assert res.status is LPStatus.OPTIMAL
        np.testing.assert_allclose(sf.a @ res.x_standard, sf.b, atol=1e-5)
        assert np.all(res.x_standard >= -1e-9)

    def test_iteration_limit_reported(self):
        lp = make_bounded_lp(5)
        res = interior_point_solve(
            lp.to_standard_form(), IPMOptions(max_iterations=1)
        )
        assert res.status is LPStatus.ITERATION_LIMIT

    def test_equality_constrained(self):
        lp = LinearProgram(
            c=[1.0, 1.0], a_eq=[[1.0, 1.0]], b_eq=[3.0], ub=[2.0, 2.0]
        )
        res = interior_point_solve(lp.to_standard_form())
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(3.0, abs=1e-5)

    def test_duals_sign_matches_simplex(self):
        lp = LinearProgram(c=[3.0, 2.0], a_ub=[[1.0, 1.0]], b_ub=[4.0])
        simplex = solve_lp(lp)
        ipm = interior_point_solve(lp.to_standard_form())
        assert ipm.duals[0] == pytest.approx(simplex.duals[0], abs=1e-4)
