"""Lockstep batched PDHG tests: agreement, mixed statuses, kernel pricing."""

import numpy as np
import pytest

from repro.device.gpu import Device
from repro.device.spec import V100
from repro.errors import LPError, ShapeError
from repro.lp.pdhg import PDHGOptions, solve_lp_pdhg
from repro.lp.pdhg_batch import (
    batch_compatible,
    solve_lp_pdhg_batch,
    solve_lp_pdhg_batch_on_device,
)
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp

EPS = 1e-8


def random_batch(k, m, n, seed, shared_matrix=False):
    rng = np.random.default_rng(seed)
    a_shared = rng.standard_normal((m, n))
    lps = []
    for _ in range(k):
        lps.append(
            LinearProgram(
                c=rng.standard_normal(n),
                a_ub=a_shared if shared_matrix else rng.standard_normal((m, n)),
                b_ub=rng.random(m) * 4 + 0.5,
                ub=np.full(n, 10.0),
            )
        )
    return lps


class TestAgreement:
    @pytest.mark.parametrize("k,m,n", [(1, 3, 4), (4, 4, 5), (8, 3, 3)])
    def test_matches_single_solver_and_simplex(self, k, m, n):
        lps = random_batch(k, m, n, seed=k + m + n)
        batch = solve_lp_pdhg_batch(lps, PDHGOptions(tolerance=EPS))
        for i, lp in enumerate(lps):
            ref = solve_lp(lp)
            assert batch.statuses[i] is ref.status
            if ref.status is LPStatus.OPTIMAL:
                assert batch.objectives[i] == pytest.approx(ref.objective, abs=1e-5)

    def test_shared_matrix_sibling_batch(self):
        # The B&B shape: same rows, per-member bounds (branching splits).
        lps = random_batch(6, 4, 5, seed=2, shared_matrix=True)
        for i, lp in enumerate(lps):
            lp.ub = lp.ub.copy()
            lp.ub[i % lp.n] = 0.5  # each sibling pins a different variable
        batch = solve_lp_pdhg_batch(lps, PDHGOptions(tolerance=EPS))
        for i, lp in enumerate(lps):
            single = solve_lp_pdhg(lp, PDHGOptions(tolerance=EPS))
            assert batch.statuses[i] is single.status
            if single.status is LPStatus.OPTIMAL:
                assert batch.objectives[i] == pytest.approx(
                    single.objective, abs=1e-5
                )

    def test_mixed_statuses_in_one_batch(self):
        good = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[2.0], ub=[np.inf])
        unbounded = LinearProgram(c=[1.0], a_ub=[[-1.0]], b_ub=[2.0], ub=[np.inf])
        infeasible = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[-1.0], ub=[np.inf])
        res = solve_lp_pdhg_batch([good, unbounded, infeasible])
        assert res.statuses[0] is LPStatus.OPTIMAL
        assert res.statuses[1] is LPStatus.UNBOUNDED
        assert res.statuses[2] is LPStatus.INFEASIBLE
        assert res.objectives[0] == pytest.approx(2.0, abs=1e-6)


class TestBounds:
    def test_bounds_are_bnb_safe(self):
        lps = random_batch(5, 4, 4, seed=6)
        res = solve_lp_pdhg_batch(lps, PDHGOptions(tolerance=1e-5))
        for i, lp in enumerate(lps):
            ref = solve_lp(lp)
            if ref.status is LPStatus.OPTIMAL:
                # The padded bound may be loose but never cuts the optimum.
                assert res.bounds[i] >= ref.objective - 1e-9

    def test_infeasible_member_bound_is_minus_inf(self):
        good = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[2.0], ub=[np.inf])
        bad = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[-1.0], ub=[np.inf])
        res = solve_lp_pdhg_batch([good, bad])
        assert res.bounds[1] == -np.inf

    def test_member_iterations_tracked(self):
        lps = random_batch(3, 4, 4, seed=8)
        res = solve_lp_pdhg_batch(lps, PDHGOptions(tolerance=EPS))
        assert res.member_iterations.shape == (3,)
        assert np.all(res.member_iterations <= res.iterations)
        assert np.all(res.member_iterations > 0)


class TestCompatibility:
    def test_batch_compatible_shapes(self):
        lps = random_batch(3, 4, 5, seed=1)
        assert batch_compatible(lps)
        assert not batch_compatible([])
        other = LinearProgram(c=[1.0, 2.0], a_ub=[[1.0, 1.0]], b_ub=[1.0])
        assert not batch_compatible(lps + [other])

    def test_empty_batch_raises(self):
        with pytest.raises(LPError):
            solve_lp_pdhg_batch([])

    def test_shape_mismatch_raises(self):
        a = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[1.0])
        b = LinearProgram(c=[1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[1.0])
        with pytest.raises(ShapeError):
            solve_lp_pdhg_batch([a, b])


class TestDevicePricing:
    def test_shared_k_path_charges_fused_gemms(self):
        lps = random_batch(4, 4, 5, seed=3, shared_matrix=True)
        device = Device(V100)
        res = solve_lp_pdhg_batch_on_device(lps, device, options=PDHGOptions())
        assert res.all_ok
        # Sibling batches fuse the frontier into plain GEMMs.
        assert device.kernel_count("gemm") > 0
        assert device.kernel_count("batched_gemm") == 0
        assert device.clock.now > 0.0

    def test_heterogeneous_path_charges_batched_gemms(self):
        lps = random_batch(4, 4, 5, seed=4, shared_matrix=False)
        device = Device(V100)
        res = solve_lp_pdhg_batch_on_device(lps, device, options=PDHGOptions())
        assert res.all_ok
        assert device.kernel_count("batched_gemm") > 0
        assert device.kernel_count("gemm") == 0
