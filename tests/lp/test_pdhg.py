"""Restarted PDHG unit tests: KKT termination, statuses, warm starts."""

import numpy as np
import pytest

from repro.check import certify_first_order_lp
from repro.lp.pdhg import PDHGOptions, solve_lp_pdhg, solve_standard_form_pdhg
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp

EPS = 1e-8


def random_lp(m, n, seed, box=True):
    """A dense LP that is feasible by construction (x = 0 works)."""
    rng = np.random.default_rng(seed)
    return LinearProgram(
        c=rng.standard_normal(n),
        a_ub=rng.standard_normal((m, n)),
        b_ub=rng.random(m) * 4 + 0.5,
        ub=np.full(n, 10.0) if box else None,
    )


class TestOptimal:
    def test_tiny_lp_known_optimum(self):
        # max 3x + 2y s.t. x + y ≤ 4, x ≤ 2, x,y ≥ 0 → (2, 2), value 10.
        lp = LinearProgram(
            c=[3.0, 2.0], a_ub=[[1.0, 1.0], [1.0, 0.0]], b_ub=[4.0, 2.0]
        )
        res = solve_lp_pdhg(lp, PDHGOptions(tolerance=EPS))
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(10.0, abs=1e-6)
        assert res.x == pytest.approx([2.0, 2.0], abs=1e-6)
        assert res.primal_residual <= EPS
        assert res.dual_residual <= EPS
        assert res.gap <= EPS

    @pytest.mark.parametrize("m,n,seed", [(3, 4, 0), (5, 5, 1), (8, 6, 2)])
    def test_matches_simplex(self, m, n, seed):
        lp = random_lp(m, n, seed)
        res = solve_lp_pdhg(lp, PDHGOptions(tolerance=EPS))
        ref = solve_lp(lp)
        assert ref.status is LPStatus.OPTIMAL
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(ref.objective, abs=1e-5)

    def test_equality_rows(self):
        # max x + y s.t. x + y = 1, x − y ≤ 0.5, 0 ≤ x,y ≤ 1.
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_eq=[[1.0, 1.0]],
            b_eq=[1.0],
            a_ub=[[1.0, -1.0]],
            b_ub=[0.5],
            ub=[1.0, 1.0],
        )
        res = solve_lp_pdhg(lp, PDHGOptions(tolerance=EPS))
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(1.0, abs=1e-6)
        assert res.x.sum() == pytest.approx(1.0, abs=1e-6)

    def test_result_certifies_exactly(self):
        lp = random_lp(4, 5, seed=7)
        res = solve_lp_pdhg(lp, PDHGOptions(tolerance=EPS))
        assert res.status is LPStatus.OPTIMAL
        report = certify_first_order_lp(lp, res, eps=EPS)
        assert report.ok, [c.name for c in report.failures]

    def test_box_only_closed_form(self):
        lp = LinearProgram(c=[2.0, -3.0, 0.0], lb=[0.0, -1.0, 0.0], ub=[5.0, 4.0, 1.0])
        res = solve_lp_pdhg(lp)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0 * 5.0 + 3.0)
        assert res.stats.iterations == 0


class TestStatuses:
    def test_infeasible_rows(self):
        # x ≤ −1 with x ≥ 0 is empty.
        lp = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[-1.0])
        res = solve_lp_pdhg(lp)
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        # max x with only x ≥ −2 binding from below.
        lp = LinearProgram(c=[1.0], a_ub=[[-1.0]], b_ub=[2.0], ub=[np.inf])
        res = solve_lp_pdhg(lp)
        assert res.status is LPStatus.UNBOUNDED

    def test_zero_matrix_bad_rhs_infeasible(self):
        # A zero row with rhs −1 encodes 0 ≤ −1.
        lp = LinearProgram(c=[1.0], a_ub=[[0.0]], b_ub=[-1.0], ub=[1.0])
        res = solve_lp_pdhg(lp)
        assert res.status is LPStatus.INFEASIBLE

    def test_iteration_limit_reports_residuals(self):
        lp = random_lp(6, 8, seed=3)
        res = solve_lp_pdhg(
            lp, PDHGOptions(tolerance=1e-14, max_iterations=40, check_every=20)
        )
        assert res.status is LPStatus.ITERATION_LIMIT
        assert res.stats.iterations == 40
        assert np.isfinite(res.primal_residual)
        assert res.x is not None and res.y is not None


class TestBoundsAndWarmStart:
    def test_upper_bound_dominates_optimum(self):
        for seed in range(4):
            lp = random_lp(4, 5, seed=seed)
            ref = solve_lp(lp)
            # Even a loose solve's padded bound must stay above the optimum.
            res = solve_lp_pdhg(lp, PDHGOptions(tolerance=1e-4))
            assert res.upper_bound() >= ref.objective - 1e-9

    def test_warm_start_reduces_iterations(self):
        lp = random_lp(6, 8, seed=11)
        opts = PDHGOptions(tolerance=EPS)
        cold = solve_lp_pdhg(lp, opts)
        assert cold.status is LPStatus.OPTIMAL
        warm = solve_lp_pdhg(lp, opts, initial=(cold.x, cold.y))
        assert warm.status is LPStatus.OPTIMAL
        assert warm.stats.iterations <= cold.stats.iterations
        assert warm.objective == pytest.approx(cold.objective, abs=1e-6)

    def test_restarts_happen_on_nontrivial_solves(self):
        lp = random_lp(8, 8, seed=5)
        res = solve_lp_pdhg(lp, PDHGOptions(tolerance=EPS))
        assert res.status is LPStatus.OPTIMAL
        assert res.stats.restarts >= 1
        assert res.stats.kkt_checks >= 1


class TestStandardForm:
    def test_standard_form_matches_simplex(self):
        lp = random_lp(4, 5, seed=9)
        sf = lp.to_standard_form()
        out = solve_standard_form_pdhg(sf, PDHGOptions(tolerance=EPS))
        ref = solve_lp(lp)
        assert out.status is LPStatus.OPTIMAL
        assert out.objective == pytest.approx(ref.objective, abs=1e-5)
        assert out.basis is None  # first-order methods carry no basis
        assert out.first_order is not None
        assert out.first_order.gap <= EPS

    def test_recovered_x_feasible(self):
        lp = random_lp(5, 4, seed=13)
        out = solve_standard_form_pdhg(lp.to_standard_form(), PDHGOptions(tolerance=EPS))
        assert out.status is LPStatus.OPTIMAL
        x = out.x
        assert np.all(lp.a_ub @ x <= lp.b_ub + 1e-6)
        assert np.all(x >= lp.lb - 1e-6)
