"""Direct unit tests for the simplex pricing rules."""

import numpy as np
import pytest

from repro.lp.pricing import (
    BlandPricing,
    DantzigPricing,
    DevexPricing,
    make_pricing,
)


class TestDantzig:
    def test_picks_most_positive(self):
        rule = DantzigPricing()
        reduced = np.array([0.5, 3.0, -1.0, 2.9])
        eligible = np.array([True, True, True, True])
        assert rule.select(reduced, eligible) == 1

    def test_respects_eligibility(self):
        rule = DantzigPricing()
        reduced = np.array([0.5, 3.0])
        eligible = np.array([True, False])
        assert rule.select(reduced, eligible) == 0

    def test_none_when_nothing_eligible(self):
        rule = DantzigPricing()
        assert rule.select(np.array([1.0]), np.array([False])) is None


class TestBland:
    def test_smallest_index(self):
        rule = BlandPricing()
        eligible = np.array([False, True, True])
        assert rule.select(np.array([0.0, 0.1, 9.9]), eligible) == 1

    def test_none_when_empty(self):
        assert BlandPricing().select(np.zeros(3), np.zeros(3, dtype=bool)) is None


class TestDevex:
    def test_initial_weights_behave_like_dantzig_squared(self):
        rule = DevexPricing()
        rule.reset(3)
        reduced = np.array([1.0, 2.0, -3.0])
        eligible = np.array([True, True, False])
        # Scores d²/w with w=1: picks index 1.
        assert rule.select(reduced, eligible) == 1

    def test_update_raises_weights(self):
        rule = DevexPricing()
        rule.reset(3)
        w = np.array([0.0, 0.0, 0.0])
        pivot_row = np.array([4.0, 2.0, 1.0])  # entering col 2 (alpha=1)
        rule.update(entering=2, leaving=0, w=w, pivot_row_coeffs=pivot_row)
        # Column 0's ratio (4/1)² = 16 should dominate its weight now.
        assert rule._weights[0] >= 16.0

    def test_auto_reset_on_size_change(self):
        rule = DevexPricing()
        rule.reset(2)
        reduced = np.array([1.0, 1.0, 5.0])
        eligible = np.ones(3, dtype=bool)
        assert rule.select(reduced, eligible) == 2

    def test_zero_pivot_update_ignored(self):
        rule = DevexPricing()
        rule.reset(2)
        before = rule._weights.copy()
        rule.update(0, 1, np.zeros(2), np.array([0.0, 0.0]))
        np.testing.assert_array_equal(rule._weights, before)


class TestFactory:
    @pytest.mark.parametrize("name", ["dantzig", "devex", "bland"])
    def test_known_rules(self, name):
        assert make_pricing(name).name == name

    def test_unknown_rule(self):
        with pytest.raises(ValueError):
            make_pricing("steepest-edge-exact")
