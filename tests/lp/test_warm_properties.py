"""Satellite: property-based warm-vs-cold agreement (hypothesis).

For *any* generated LP with a planted feasible point, a warm dual-simplex
re-solve seeded from the unperturbed problem's optimal basis must agree
with a cold solve of the perturbed problem — for random rhs, objective,
and bound-tightening moves (the §5.3 reuse regime).  A warm state that
cannot seed the re-solve returns ``None`` (the caller cold-solves), and
an OPTIMAL warm answer must pass the from-scratch KKT audit; what is
never allowed is a conclusive warm answer that contradicts cold.

Separately, the sensitivity contract behind serve's range hits: when an
rhs move stays inside :func:`repro.lp.sensitivity.analyze`'s rhs ranges,
the optimal basis is unchanged and the re-solved objective must equal
the dual-predicted value ``objective + y·Δb`` — the zero-pivot answer.
"""

import dataclasses

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.sensitivity import analyze
from repro.lp.simplex import solve_lp, solve_standard_form
from repro.lp.warm import audit_warm_lp, state_from_result, warm_resolve

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_TERMINAL = (LPStatus.OPTIMAL, LPStatus.INFEASIBLE, LPStatus.UNBOUNDED)

coeff = st.integers(min_value=-3, max_value=3)
cost = st.integers(min_value=-5, max_value=5)


@st.composite
def feasible_lps(draw):
    """Random integer-grid LP made feasible by planting x0 inside it."""
    n = draw(st.integers(min_value=2, max_value=4))
    m = draw(st.integers(min_value=1, max_value=4))
    a = np.array(
        draw(
            st.lists(
                st.lists(coeff, min_size=n, max_size=n), min_size=m, max_size=m
            )
        ),
        dtype=float,
    )
    c = np.array(draw(st.lists(cost, min_size=n, max_size=n)), dtype=float)
    x0 = np.array(
        draw(st.lists(st.integers(min_value=0, max_value=3), min_size=n, max_size=n)),
        dtype=float,
    )
    slack = np.array(
        draw(st.lists(st.integers(min_value=1, max_value=5), min_size=m, max_size=m)),
        dtype=float,
    )
    return LinearProgram(
        c=c,
        a_ub=a,
        b_ub=a @ x0 + slack,
        lb=np.zeros(n),
        ub=x0 + 3.0,
    )


@SLOW
@given(data=st.data(), lp=feasible_lps())
def test_warm_resolve_agrees_with_cold(data, lp):
    """Warm from the base basis == cold, on random perturbed problems."""
    cold0 = solve_lp(lp)
    assume(cold0.status is LPStatus.OPTIMAL and cold0.basis is not None)
    sf0 = lp.to_standard_form()
    state = state_from_result(sf0, cold0)

    kind = data.draw(st.sampled_from(["rhs", "obj", "bound"]), label="kind")
    b_ub = np.array(lp.b_ub, dtype=float)
    c = np.array(lp.c, dtype=float)
    ub = np.array(lp.ub, dtype=float)
    m, n = b_ub.shape[0], c.shape[0]
    if kind == "rhs":
        delta = np.array(
            data.draw(
                st.lists(coeff, min_size=m, max_size=m), label="delta_b"
            ),
            dtype=float,
        )
        b_ub = b_ub + delta
    elif kind == "obj":
        delta = np.array(
            data.draw(
                st.lists(coeff, min_size=n, max_size=n), label="delta_c"
            ),
            dtype=float,
        )
        c = c + delta
    else:
        # One tightened upper bound — exactly a branching child's move.
        i = data.draw(st.integers(min_value=0, max_value=n - 1), label="var")
        ub[i] = max(0.0, ub[i] - 1.0)

    perturbed = LinearProgram(c=c, a_ub=lp.a_ub, b_ub=b_ub, lb=lp.lb, ub=ub)
    cold = solve_lp(perturbed)
    sf = perturbed.to_standard_form()
    assume(sf.a.shape == sf0.a.shape)

    outcome = warm_resolve(sf, state)
    if outcome is None:
        return  # unusable warm state: the caller cold-solves, no claim made
    res = outcome.result
    if outcome.audit_failed:
        # An audited-out OPTIMAL answer is discarded, never served.
        assert res.status is LPStatus.OPTIMAL
        return
    if res.status not in _TERMINAL or cold.status not in _TERMINAL:
        return  # inconclusive on either side: no claim to compare
    assert res.status is cold.status, (res.status, cold.status)
    if res.status is LPStatus.OPTIMAL:
        scale = 1.0 + max(abs(res.objective), abs(cold.objective))
        assert abs(res.objective - cold.objective) <= 1e-7 * scale
        assert audit_warm_lp(sf, res)


@SLOW
@given(data=st.data(), lp=feasible_lps())
def test_inrange_rhs_move_matches_full_resolve(data, lp):
    """Inside the rhs ranges, the dual prediction == a full re-solve."""
    cold = solve_lp(lp)
    assume(
        cold.status is LPStatus.OPTIMAL
        and cold.basis is not None
        and cold.duals is not None
    )
    sf = lp.to_standard_form()
    report = analyze(sf, cold)

    fractions = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=sf.m,
            max_size=sf.m,
        ),
        label="fractions",
    )
    delta = np.zeros(sf.m)
    usage = 0.0
    for i, (lo, hi) in enumerate(report.rhs_ranges):
        # Stay strictly inside the range (and on a bounded grid): half
        # the clipped interval, signed by the drawn fraction.
        lo = max(lo, -2.0)
        hi = min(hi, 2.0)
        delta[i] = 0.5 * (lo + fractions[i] * (hi - lo))
        # One-at-a-time ranges only bound *joint* moves via the 100%
        # rule: the summed fractions of each row's allowance must stay
        # below 1 or the basis may leave its feasibility cone.
        if delta[i] > 0:
            usage += delta[i] / hi
        elif delta[i] < 0:
            usage += delta[i] / lo
    if usage > 0.9:
        delta *= 0.9 / usage
    sf2 = dataclasses.replace(sf, b=sf.b + delta)
    res2 = solve_standard_form(sf2)
    assume(res2.status is LPStatus.OPTIMAL)

    predicted = cold.objective + float(cold.duals @ delta)
    scale = 1.0 + max(abs(predicted), abs(res2.objective))
    assert abs(predicted - res2.objective) <= 1e-6 * scale
