"""Tests for LinearProgram and standard-form conversion."""

import numpy as np
import pytest

from repro.errors import ProblemFormatError
from repro.lp.problem import LinearProgram


class TestValidation:
    def test_minimal(self):
        lp = LinearProgram(c=[1.0, 2.0])
        assert lp.n == 2
        np.testing.assert_array_equal(lp.lb, [0.0, 0.0])
        assert np.all(np.isinf(lp.ub))

    def test_bad_a_ub_width(self):
        with pytest.raises(ProblemFormatError):
            LinearProgram(c=[1.0], a_ub=[[1.0, 2.0]], b_ub=[1.0])

    def test_b_without_a(self):
        with pytest.raises(ProblemFormatError):
            LinearProgram(c=[1.0], b_ub=[1.0])
        with pytest.raises(ProblemFormatError):
            LinearProgram(c=[1.0], b_eq=[1.0])

    def test_row_mismatch(self):
        with pytest.raises(ProblemFormatError):
            LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[1.0, 2.0])

    def test_crossing_bounds(self):
        with pytest.raises(ProblemFormatError):
            LinearProgram(c=[1.0], lb=[2.0], ub=[1.0])

    def test_with_bounds_tightens_only(self):
        lp = LinearProgram(c=[1.0], lb=[0.0], ub=[10.0])
        child = lp.with_bounds(0, lb=3.0, ub=12.0)
        assert child.lb[0] == 3.0
        assert child.ub[0] == 10.0  # cannot loosen

    def test_density(self):
        lp = LinearProgram(
            c=[1.0, 1.0], a_ub=[[1.0, 0.0], [0.0, 0.0]], b_ub=[1.0, 1.0]
        )
        assert lp.density() == pytest.approx(0.25)


class TestStandardForm:
    def test_simple_inequality(self):
        lp = LinearProgram(c=[3.0, 2.0], a_ub=[[1.0, 1.0]], b_ub=[4.0])
        sf = lp.to_standard_form()
        assert sf.m == 1
        assert sf.n == 3  # two structural + one slack
        np.testing.assert_allclose(sf.a, [[1.0, 1.0, 1.0]])
        np.testing.assert_allclose(sf.b, [4.0])

    def test_shifted_lower_bound(self):
        lp = LinearProgram(c=[1.0], a_ub=[[1.0]], b_ub=[10.0], lb=[2.0])
        sf = lp.to_standard_form()
        np.testing.assert_allclose(sf.b, [8.0])
        assert sf.offset == pytest.approx(2.0)
        x = sf.recover_x(np.array([3.0, 5.0]))
        assert x[0] == pytest.approx(5.0)

    def test_free_variable_split(self):
        lp = LinearProgram(c=[1.0], lb=[-np.inf], a_eq=[[1.0]], b_eq=[5.0])
        sf = lp.to_standard_form()
        assert sf.num_structural == 2
        x = sf.recover_x(np.array([7.0, 2.0]))
        assert x[0] == pytest.approx(5.0)

    def test_upper_bound_becomes_row(self):
        lp = LinearProgram(c=[1.0], ub=[3.0])
        sf = lp.to_standard_form()
        assert sf.m == 1  # the bound row
        np.testing.assert_allclose(sf.b, [3.0])

    def test_objective_value_roundtrip(self):
        lp = LinearProgram(
            c=[2.0, -1.0],
            a_ub=[[1.0, 1.0]],
            b_ub=[6.0],
            lb=[1.0, -np.inf],
            ub=[4.0, np.inf],
        )
        sf = lp.to_standard_form()
        # Pick an arbitrary standard-form point and verify the objective map.
        x_std = np.abs(np.random.default_rng(0).standard_normal(sf.n))
        x = sf.recover_x(x_std)
        assert sf.objective_value(x_std) == pytest.approx(float(lp.c @ x))
