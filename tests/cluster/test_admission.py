"""SLO-aware admission: priority classes, shed levels, hysteresis."""

import pytest

from repro.cluster.admission import (
    PRIORITY_CLASSES,
    SLOAdmission,
    SLOPolicy,
    priority_rank,
)
from repro.errors import ServiceError


class TestPriorityClasses:
    def test_rank_order_gold_first(self):
        assert [priority_rank(p) for p in PRIORITY_CLASSES] == [0, 1, 2]

    def test_unknown_class_rejected(self):
        with pytest.raises(ServiceError):
            priority_rank("platinum")


class TestSLOPolicyValidation:
    def test_defaults_valid(self):
        SLOPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p95_target": 0.0},
            {"p99_target": -1.0},
            {"check_interval": 0.0},
            {"recover_fraction": 0.0},
            {"recover_fraction": 1.0},
            {"window": 4},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            SLOPolicy(**kwargs)


def _breaching(policy):
    """An admission controller whose window breaches both targets."""
    adm = SLOAdmission(policy)
    for _ in range(32):
        adm.observe(10.0 * policy.p99_target)
    return adm


class TestShedLevels:
    POLICY = SLOPolicy(p95_target=1e-3, p99_target=1e-2, check_interval=1.0)

    def test_level_rises_one_step_per_check(self):
        adm = _breaching(self.POLICY)
        assert adm.evaluate(0.0) == 1
        # Within the same check interval the level holds.
        assert adm.evaluate(0.5) == 1
        assert adm.evaluate(1.0) == 2

    def test_gold_is_never_shed(self):
        adm = _breaching(self.POLICY)
        for t in range(10):
            adm.evaluate(float(t))
        assert adm.shed_level == len(PRIORITY_CLASSES) - 1
        assert adm.admit("gold", 100.0)
        assert not adm.admit("silver", 200.0)
        assert not adm.admit("bronze", 300.0)

    def test_shed_order_bronze_before_silver(self):
        adm = _breaching(self.POLICY)
        adm.evaluate(0.0)
        assert adm.shed_level == 1
        assert adm.admit("silver", 0.0)
        assert not adm.admit("bronze", 0.0)

    def test_recovery_needs_both_percentiles_below_fraction(self):
        adm = _breaching(self.POLICY)
        adm.evaluate(0.0)
        assert adm.shed_level == 1
        # Replace the window with latencies well under recovery.
        for _ in range(self.POLICY.window):
            adm.observe(1e-6)
        assert adm.evaluate(1.0) == 0

    def test_hysteresis_no_drop_in_the_dead_band(self):
        adm = _breaching(self.POLICY)
        adm.evaluate(0.0)
        # Latencies between recover_fraction*target and target: level holds.
        for _ in range(self.POLICY.window):
            adm.observe(0.9 * self.POLICY.p95_target)
        assert adm.evaluate(1.0) == 1
        assert adm.evaluate(2.0) == 1

    def test_transitions_are_recorded(self):
        adm = _breaching(self.POLICY)
        adm.evaluate(0.0)
        adm.evaluate(1.0)
        assert [lvl for (_, lvl, _, _) in adm.transitions] == [1, 2]


class TestReporting:
    def test_shed_rate_and_stats(self):
        adm = _breaching(SLOPolicy(p95_target=1e-3, p99_target=1e-2))
        adm.evaluate(0.0)
        assert adm.admit("gold", 0.0)
        assert not adm.admit("bronze", 0.0)
        assert not adm.admit("bronze", 0.0)
        assert adm.shed_rate("bronze") == 1.0
        assert adm.shed_rate("gold") == 0.0
        stats = adm.stats()
        assert stats["shed"]["bronze"] == 2
        assert stats["admitted"]["gold"] == 1
        assert stats["shed_level"] == 1
        assert stats["transitions"] == 1

    def test_window_is_bounded(self):
        policy = SLOPolicy(window=16)
        adm = SLOAdmission(policy)
        for i in range(100):
            adm.observe(float(i))
        assert len(adm._window) == 16
        # Only the most recent 16 latencies feed the percentiles.
        p95, _ = adm.percentiles()
        assert p95 >= 84.0

    def test_empty_window_percentiles_are_zero(self):
        assert SLOAdmission().percentiles() == (0.0, 0.0)
