"""Heavy-tailed traffic generation and cluster replay."""

import numpy as np
import pytest

from repro.cluster import ClusterService
from repro.cluster.admission import PRIORITY_CLASSES
from repro.cluster.traffic import (
    TrafficSpec,
    heavy_tailed_stream,
    replay_cluster,
)
from repro.errors import ServiceError
from repro.serve.request import fingerprint
from repro.serve.workload import lp_pool

POOL = lp_pool(16, seed=2)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_requests": 0},
            {"mean_interarrival": 0.0},
            {"pareto_alpha": 1.0},
            {"zipf_s": -0.1},
            {"priority_mix": (0.5, 0.5)},
            {"priority_mix": (0.5, 0.4, 0.2)},
        ],
    )
    def test_bad_specs_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            TrafficSpec(**kwargs)


class TestStreamShape:
    SPEC = TrafficSpec(num_requests=500, mean_interarrival=1e-3, seed=5)

    def test_deterministic(self):
        a = heavy_tailed_stream(POOL, self.SPEC)
        b = heavy_tailed_stream(POOL, self.SPEC)
        assert [(t, fingerprint(p), pr) for t, p, pr in a] == [
            (t, fingerprint(p), pr) for t, p, pr in b
        ]

    def test_arrivals_nondecreasing(self):
        arrivals = [t for t, _, _ in heavy_tailed_stream(POOL, self.SPEC)]
        assert arrivals == sorted(arrivals)

    def test_mean_interarrival_is_respected(self):
        arrivals = [t for t, _, _ in heavy_tailed_stream(POOL, self.SPEC)]
        mean_gap = arrivals[-1] / len(arrivals)
        # Pareto sampling noise on 500 draws: right order of magnitude.
        assert 0.3e-3 < mean_gap < 3e-3

    def test_gaps_are_heavy_tailed(self):
        arrivals = np.array([t for t, _, _ in heavy_tailed_stream(POOL, self.SPEC)])
        gaps = np.diff(np.concatenate([[0.0], arrivals]))
        # Bursty: the max gap dwarfs the median gap.
        assert gaps.max() > 10.0 * np.median(gaps)

    def test_zipf_popularity_has_a_hot_head(self):
        spec = TrafficSpec(num_requests=800, zipf_s=1.5, seed=7)
        counts = {}
        for _, problem, _ in heavy_tailed_stream(POOL, spec):
            counts[fingerprint(problem)] = counts.get(fingerprint(problem), 0) + 1
        top = max(counts.values())
        assert top > 2 * (800 / len(POOL))  # far above the uniform share

    def test_priorities_follow_the_mix(self):
        spec = TrafficSpec(num_requests=600, priority_mix=(0.0, 1.0, 0.0), seed=3)
        priorities = {pr for _, _, pr in heavy_tailed_stream(POOL, spec)}
        assert priorities == {"silver"}
        mixed = {pr for _, _, pr in heavy_tailed_stream(POOL, self.SPEC)}
        assert mixed <= set(PRIORITY_CLASSES)

    def test_empty_pool_rejected(self):
        with pytest.raises(ServiceError):
            heavy_tailed_stream([], self.SPEC)


class TestReplay:
    def test_replay_answers_every_request(self):
        spec = TrafficSpec(num_requests=40, mean_interarrival=1e-4, seed=1)
        stream = heavy_tailed_stream(POOL, spec)
        cluster = ClusterService(groups=2)
        responses, rejected = replay_cluster(cluster, stream)
        assert rejected == 0
        assert len(responses) == len(stream)
        ids = [r.request_id for r in responses]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
