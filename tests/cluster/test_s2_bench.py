"""The S2 cluster benchmark: payload schema, determinism, scaling."""

from repro.cluster.bench import cluster_bench_payload, run_cluster_point, s2_pool
from repro.cluster.traffic import TrafficSpec, heavy_tailed_stream
from repro.obs.bench import validate_bench_payload

#: Small but saturating: enough requests that one group queues.
KW = dict(
    shard_counts=(1, 2),
    num_requests=120,
    pool_size=48,
    mean_interarrival=4e-5,
    seed=0,
)


class TestS2Pool:
    def test_pool_is_shape_diverse(self):
        pool = s2_pool(24, base_items=10, shape_spread=8, seed=0)
        shapes = {p.c.shape for p in pool}
        assert len(shapes) == 8


class TestRunClusterPoint:
    def test_row_has_the_benchmark_columns(self):
        problems = s2_pool(24, seed=0)
        stream = heavy_tailed_stream(
            problems, TrafficSpec(num_requests=60, mean_interarrival=4e-5)
        )
        row = run_cluster_point(2, stream)
        for column in (
            "shards",
            "requests",
            "completed",
            "shed",
            "rejected",
            "makespan",
            "throughput",
            "router_spills",
            "affinity_hits",
            "latency_p50",
            "latency_p95",
            "latency_p99",
            "router_p95",
            "queue_wait_p95",
            "batch_p95",
            "solve_p95",
            "shed_rate_gold",
            "shed_rate_silver",
            "shed_rate_bronze",
        ):
            assert column in row, column
        assert row["shards"] == 2
        assert row["requests"] == 60
        assert row["completed"] + row["shed"] + row["rejected"] <= row["requests"]


class TestPayload:
    def test_payload_validates_and_scales(self):
        payload = cluster_bench_payload(**KW)
        validate_bench_payload(payload)
        assert payload["bench"] == "s2-cluster"
        assert len(payload["rows"]) == 2
        summary = payload["summary"]
        assert summary["base_shards"] == 1
        assert summary["peak_shards"] == 2
        # Two shards must beat one on a saturating stream (the hard 3x
        # gate lives in the CLI at the full 4-shard configuration).
        assert summary["throughput_speedup"] > 1.2
        assert summary["shed_rate_gold_peak"] == 0.0

    def test_payload_is_deterministic(self):
        assert cluster_bench_payload(**KW) == cluster_bench_payload(**KW)
