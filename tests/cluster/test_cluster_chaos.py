"""Whole-group-kill chaos over the cluster tier (satellite of PR 10).

The contract under a group fail-stop:

- responses the group delivered before the kill stay delivered (exactly
  once — never re-answered);
- everything the group still owed is re-routed to the survivors and
  answered exactly once (never dropped, never double-answered);
- the dead shard's cache replica is invalidated, while the shared owner
  tier keeps the still-valid answers.

Both surfaces are pinned: direct :meth:`ClusterService.kill_group`
calls, and the fault-injection path (``cluster.group`` site) that
``repro chaos`` replays via the builtin ``group-kill`` plan.
"""

import pytest

from repro.cluster import ClusterService
from repro.errors import ServiceError
from repro.faults.chaos import builtin_corpus, run_chaos
from repro.faults.injector import injecting
from repro.faults.plan import SITE_GROUP, FaultPlan, ScheduledFault
from repro.serve.workload import mip_pool

POOL = mip_pool(4, num_items=8, seed=11)


def _submit_stream(cluster, requests, gap=1e-4):
    ids = []
    for i in range(requests):
        ids.append(cluster.submit(POOL[i % len(POOL)], at=gap * i))
    return ids


class TestKillGroupDirect:
    def test_inflight_rerouted_never_dropped_or_duplicated(self):
        cluster = ClusterService(groups=3, num_workers=2)
        ids = _submit_stream(cluster, 12)
        victim = cluster.group_ids[0]
        rerouted = cluster.kill_group(victim, at=cluster.now)
        responses = cluster.close()
        answered = [r.request_id for r in responses]
        assert sorted(answered) == sorted(ids)
        assert len(answered) == len(set(answered))
        assert cluster.metrics.count("cluster.rerouted") == rerouted

    def test_delivered_responses_stay_delivered(self):
        cluster = ClusterService(groups=3, num_workers=2)
        ids = _submit_stream(cluster, 8)
        # A late arrival forces a harvest pass: earlier completions are
        # delivered before any kill happens.
        late = cluster.submit(POOL[0], at=10.0)
        delivered = {
            rid: cluster.result(rid)
            for rid in ids
            if cluster.result(rid) is not None
        }
        assert delivered, "expected some responses delivered pre-kill"
        victim = cluster.group_ids[-1]
        cluster.kill_group(victim, at=cluster.now)
        for rid, response in delivered.items():
            assert cluster.result(rid) is response
        answered = [r.request_id for r in cluster.close()]
        assert sorted(answered) == sorted(ids + [late])
        assert len(answered) == len(set(answered))

    def test_dead_shards_cache_replica_is_invalidated(self):
        cluster = ClusterService(groups=2, num_workers=2)
        ids = _submit_stream(cluster, 6)
        # Let everything complete so both replicas hold entries.
        cluster.submit(POOL[0], at=10.0)
        victim = max(
            cluster.group_ids, key=lambda g: cluster.cache.replica_len(g)
        )
        assert cluster.cache.replica_len(victim) > 0
        cluster.kill_group(victim, at=cluster.now)
        stats = cluster.cache.stats()
        assert victim not in stats["replicas"]
        assert stats["replica_drops"] >= 1
        # The owner tier keeps the answers — they are still valid.
        assert stats["entries"] > 0
        assert sorted(r.request_id for r in cluster.close()) == sorted(
            ids + [ids[-1] + 1]
        )

    def test_killing_the_last_group_is_refused(self):
        cluster = ClusterService(groups=1, num_workers=2)
        with pytest.raises(ServiceError):
            cluster.kill_group(cluster.group_ids[0], at=0.0)

    def test_sequential_kills_down_to_one_group(self):
        cluster = ClusterService(groups=3, num_workers=2)
        ids = _submit_stream(cluster, 9)
        cluster.kill_group(cluster.group_ids[0], at=cluster.now)
        cluster.kill_group(cluster.group_ids[0], at=cluster.now)
        assert len(cluster.group_ids) == 1
        answered = [r.request_id for r in cluster.close()]
        assert sorted(answered) == sorted(ids)
        assert len(answered) == len(set(answered))


class TestGroupKillInjection:
    def test_scheduled_group_kill_fires_and_recovers(self):
        plan = FaultPlan(
            seed=0,
            scheduled=(ScheduledFault(site=SITE_GROUP, at=2),),
            name="one-kill",
        )
        with injecting(plan) as injector:
            cluster = ClusterService(groups=3, num_workers=2)
            ids = _submit_stream(cluster, 8)
            responses = cluster.close()
        assert cluster.metrics.count("cluster.group_kills") == 1
        assert len(cluster.group_ids) == 2
        assert injector.clean
        assert injector.counts()["injected"] == 1
        assert injector.counts()["recovered"] == 1
        answered = [r.request_id for r in responses]
        assert sorted(answered) == sorted(ids)
        assert len(answered) == len(set(answered))

    def test_last_group_never_consults_the_site(self):
        plan = FaultPlan(
            seed=0, rates={SITE_GROUP: 1.0}, max_faults=None, name="kill-all"
        )
        with injecting(plan) as injector:
            cluster = ClusterService(groups=3, num_workers=2)
            ids = _submit_stream(cluster, 8)
            responses = cluster.close()
            # Rate 1.0 kills a group on every eligible admission; once a
            # single group is left, the site is never consulted again.
            assert len(cluster.group_ids) == 1
            assert injector.occurrences(SITE_GROUP) == 2
        assert injector.clean
        assert sorted(r.request_id for r in responses) == sorted(ids)

    def test_builtin_group_kill_plan_passes_chaos(self):
        corpus = [p for p in builtin_corpus(seed=0) if p.name == "group-kill"]
        assert corpus, "group-kill plan missing from the builtin corpus"
        report = run_chaos(plans=corpus, seed=0, items=8, requests=8)
        assert report.ok, [run.to_dict() for run in report.runs]
        scenarios = {run.scenario for run in report.runs}
        assert "cluster" in scenarios
        assert report.total_injected >= 2
