"""The shared result-cache tier: owner + per-shard replicas."""

import pytest

from repro.cluster.cache import ClusterCache, ENTRY_WIRE_BYTES
from repro.comm.network import SHARED_MEMORY, ZERO_COST
from repro.errors import ServiceError
from repro.serve.cache import CACHE_LOOKUP_SECONDS, CacheEntry
from repro.serve.request import Outcome


def _entry(ready_time=1.0, objective=42.0):
    return CacheEntry(
        outcome=Outcome.OK,
        solver_status="optimal",
        objective=objective,
        x=None,
        ready_time=ready_time,
    )


class TestLookupCosts:
    def test_producing_shard_hits_locally(self):
        cache = ClusterCache(network=SHARED_MEMORY)
        cache.attach_shard(0)
        cache.insert("fp", _entry(), shard=0)
        entry, cost = cache.lookup("fp", shard=0)
        assert entry is not None
        assert cost == CACHE_LOOKUP_SECONDS
        assert cache.local_hits == 1

    def test_other_shard_pays_the_round_trip_then_replicates(self):
        cache = ClusterCache(network=SHARED_MEMORY)
        cache.attach_shard(0)
        cache.attach_shard(1)
        cache.insert("fp", _entry(), shard=0)
        remote_cost = (
            CACHE_LOOKUP_SECONDS
            + SHARED_MEMORY.message_time(64)
            + SHARED_MEMORY.message_time(ENTRY_WIRE_BYTES)
        )
        entry, cost = cache.lookup("fp", shard=1)
        assert entry is not None
        assert cost == remote_cost
        assert cache.remote_hits == 1
        # The entry is now replicated at shard 1: second hit is local.
        _, cost2 = cache.lookup("fp", shard=1)
        assert cost2 == CACHE_LOOKUP_SECONDS
        assert cache.local_hits == 1

    def test_zero_cost_network_remote_equals_local(self):
        cache = ClusterCache(network=ZERO_COST)
        cache.insert("fp", _entry(), shard=0)
        _, cost = cache.lookup("fp", shard=1)
        assert cost == CACHE_LOOKUP_SECONDS

    def test_miss_costs_the_probe_only(self):
        cache = ClusterCache()
        entry, cost = cache.lookup("nope", shard=0)
        assert entry is None
        assert cost == CACHE_LOOKUP_SECONDS
        assert cache.misses == 1


class TestInvalidation:
    def test_invalidate_removes_owner_and_every_replica(self):
        cache = ClusterCache()
        cache.insert("fp", _entry(), shard=0)
        cache.lookup("fp", shard=1)  # replicate at shard 1
        assert cache.invalidate("fp") == 3  # owner + 2 replicas
        assert cache.lookup("fp", shard=0)[0] is None
        assert cache.lookup("fp", shard=1)[0] is None
        assert cache.invalidations == 1

    def test_invalidate_unknown_fingerprint_is_a_noop(self):
        cache = ClusterCache()
        assert cache.invalidate("ghost") == 0
        assert cache.invalidations == 0

    def test_drop_replica_keeps_the_owner_tier(self):
        cache = ClusterCache()
        cache.insert("fp", _entry(), shard=0)
        assert cache.replica_len(0) == 1
        assert cache.drop_replica(0) == 1
        assert cache.replica_len(0) == 0
        assert cache.replica_drops == 1
        # The answer survives in the owner tier for other shards.
        entry, _ = cache.lookup("fp", shard=1)
        assert entry is not None


class TestBounds:
    def test_owner_tier_is_lru_bounded(self):
        cache = ClusterCache(capacity=2)
        for i in range(3):
            cache.insert(f"fp{i}", _entry(objective=float(i)), shard=0)
        assert len(cache) == 2
        # Probe from a fresh shard so the producing shard's replica
        # (which may still hold evicted entries) is out of the picture.
        assert cache.lookup("fp0", shard=1)[0] is None
        assert cache.lookup("fp2", shard=1)[0] is not None

    def test_replicas_are_lru_bounded(self):
        cache = ClusterCache(replica_capacity=2)
        for i in range(4):
            cache.insert(f"fp{i}", _entry(), shard=0)
        assert cache.replica_len(0) == 2
        # The owner tier still holds all four.
        assert len(cache) == 4

    def test_zero_capacity_disables_the_tier(self):
        cache = ClusterCache(capacity=0)
        cache.insert("fp", _entry(), shard=0)
        assert cache.lookup("fp", shard=0)[0] is None

    def test_negative_capacities_rejected(self):
        with pytest.raises(ServiceError):
            ClusterCache(capacity=-1)
        with pytest.raises(ServiceError):
            ClusterCache(replica_capacity=-1)


class TestStats:
    def test_hit_rate_and_stats_shape(self):
        cache = ClusterCache()
        cache.insert("fp", _entry(), shard=0)
        cache.lookup("fp", shard=0)
        cache.lookup("ghost", shard=0)
        assert cache.hit_rate == 0.5
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["local_hits"] == 1
        assert stats["misses"] == 1
        assert stats["replicas"] == {0: 1}
