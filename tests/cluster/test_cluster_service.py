"""The cluster front door: routing, cache tier, shedding, autoscaling."""

import pytest

from repro.cluster import (
    AutoscalePolicy,
    ClusterService,
    SLOPolicy,
    request_wire_bytes,
)
from repro.errors import ServiceClosed, ServiceError
from repro.serve.request import Outcome
from repro.serve.workload import lp_pool, mip_pool

POOL = lp_pool(8, seed=4)


class TestWireFormat:
    def test_request_wire_bytes_counts_the_arrays(self):
        small = lp_pool(1, num_items=6, seed=0)[0]
        large = lp_pool(1, num_items=24, seed=0)[0]
        assert request_wire_bytes(small) > 64
        assert request_wire_bytes(large) > request_wire_bytes(small)


class TestSubmitBasics:
    def test_every_request_answered_once_in_id_order(self):
        cluster = ClusterService(groups=3)
        ids = [
            cluster.submit(POOL[i % len(POOL)], at=1e-4 * i) for i in range(12)
        ]
        responses = cluster.close()
        assert [r.request_id for r in responses] == ids
        assert all(r.outcome is Outcome.OK for r in responses)

    def test_deterministic_replay(self):
        def run():
            cluster = ClusterService(groups=2)
            for i in range(10):
                cluster.submit(POOL[i % 3], at=1e-4 * i)
            return [r.to_dict() for r in cluster.close()]

        assert run() == run()

    def test_arrivals_must_be_nondecreasing(self):
        cluster = ClusterService(groups=2)
        cluster.submit(POOL[0], at=1.0)
        with pytest.raises(ServiceError):
            cluster.submit(POOL[1], at=0.5)

    def test_submit_after_close_raises(self):
        cluster = ClusterService(groups=2)
        cluster.close()
        with pytest.raises(ServiceClosed):
            cluster.submit(POOL[0])

    def test_unknown_priority_rejected(self):
        cluster = ClusterService(groups=2, slo=SLOPolicy())
        with pytest.raises(ServiceError):
            cluster.submit(POOL[0], priority="platinum")

    def test_needs_at_least_one_group(self):
        with pytest.raises(ServiceError):
            ClusterService(groups=0)


class TestRoutingAndCache:
    def test_same_problem_routes_to_one_shard(self):
        cluster = ClusterService(groups=4)
        for i in range(6):
            cluster.submit(POOL[0], at=1e-6 * i)
        loaded = [g for g in cluster.group_ids if cluster._load(g) > 0]
        assert len(loaded) == 1
        cluster.close()

    def test_repeat_after_delivery_hits_the_cluster_cache(self):
        cluster = ClusterService(groups=2)
        cluster.submit(POOL[0], at=0.0)
        rid = cluster.submit(POOL[0], at=10.0)  # long after completion
        response = cluster.result(rid) or cluster.close()[rid]
        assert response.cached
        assert cluster.metrics.count("cluster.cache_hits") == 1

    def test_duplicate_affinity_follows_the_inflight_primary(self):
        cluster = ClusterService(groups=4)
        cluster.submit(POOL[0], at=0.0)
        for i in range(5):
            cluster.submit(POOL[0], at=1e-7 * (i + 1))
        assert cluster.metrics.count("cluster.affinity_hits") >= 1
        responses = cluster.close()
        # All six answered, exactly one device solve (rest coalesced or
        # answered by the shard's own cache).
        assert len(responses) == 6
        assert sum(1 for r in responses if not r.cached and not r.coalesced) == 1

    def test_least_loaded_router_spreads_distinct_work(self):
        cluster = ClusterService(groups=2, router="least_loaded")
        for i in range(8):
            cluster.submit(POOL[i], at=1e-7 * i)
        assert all(cluster._load(g) > 0 for g in cluster.group_ids)
        cluster.close()


class TestShedding:
    TIGHT = SLOPolicy(p95_target=1e-7, p99_target=1e-7, check_interval=1e-6)

    def test_bronze_is_shed_under_pressure_gold_survives(self):
        cluster = ClusterService(groups=1, slo=self.TIGHT)
        # Generate latency observations that breach the impossible SLO.
        for i in range(6):
            cluster.submit(POOL[i], at=1e-5 * i, priority="gold")
        cluster.submit(POOL[6], at=1.0, priority="gold")  # deliver + observe
        shed_rid = cluster.submit(POOL[7], at=1.001, priority="bronze")
        shed = cluster.result(shed_rid)
        assert shed is not None and shed.outcome is Outcome.SHED
        assert shed.solver_status == "shed"
        responses = cluster.close()
        gold = [r for r in responses if r.request_id != shed_rid]
        assert all(r.outcome is not Outcome.SHED for r in gold)
        assert cluster.stats()["derived"]["shed_rate"]["bronze"] == 1.0

    def test_shed_responses_are_answers_not_drops(self):
        cluster = ClusterService(groups=1, slo=self.TIGHT)
        ids = []
        for i in range(6):
            ids.append(cluster.submit(POOL[i], at=1e-5 * i, priority="gold"))
        ids.append(cluster.submit(POOL[6], at=1.0, priority="bronze"))
        ids.append(cluster.submit(POOL[7], at=1.001, priority="bronze"))
        responses = cluster.close()
        assert sorted(r.request_id for r in responses) == sorted(ids)


class TestMembership:
    def test_drain_group_delivers_everything_it_owed(self):
        cluster = ClusterService(groups=2)
        ids = [cluster.submit(POOL[i], at=1e-5 * i) for i in range(6)]
        victim = cluster.group_ids[0]
        cluster.drain_group(victim)
        assert victim not in cluster.group_ids
        responses = cluster.close()
        assert sorted(r.request_id for r in responses) == ids

    def test_autoscale_adds_groups_under_load_and_drains_idle(self):
        policy = AutoscalePolicy(
            min_groups=1,
            max_groups=4,
            up_outstanding=2.0,
            down_outstanding=0.5,
            cooldown=0.0,
        )
        cluster = ClusterService(groups=1, autoscale=policy)
        wide = lp_pool(24, seed=9)
        for i, problem in enumerate(wide):
            cluster.submit(problem, at=1e-7 * i)
        assert len(cluster.group_ids) > 1
        assert any(action == "add" for _, action, _, _ in cluster.scale_events)
        # A long-idle arrival lets the backlog drain and scale back down.
        cluster.submit(wide[0], at=10.0)
        cluster.submit(wide[1], at=20.0)
        assert any(
            action == "drain" for _, action, _, _ in cluster.scale_events
        )
        assert len(cluster.close()) == len(wide) + 2

    def test_autoscale_policy_validation(self):
        with pytest.raises(ServiceError):
            AutoscalePolicy(min_groups=3, max_groups=2)
        with pytest.raises(ServiceError):
            AutoscalePolicy(up_outstanding=1.0, down_outstanding=1.0)
        with pytest.raises(ServiceError):
            AutoscalePolicy(cooldown=-1.0)


class TestStats:
    def test_stats_shape(self):
        cluster = ClusterService(groups=2, slo=SLOPolicy())
        for i in range(4):
            cluster.submit(POOL[i], at=1e-5 * i)
        cluster.close()
        derived = cluster.stats()["derived"]
        assert derived["groups"] == cluster.group_ids
        assert set(derived["tiers"]) == {
            "router",
            "queue_wait",
            "batch",
            "solve",
            "latency",
        }
        for tier in derived["tiers"].values():
            assert set(tier) == {"p50", "p95", "p99"}
        assert set(derived["shed_rate"]) == {"gold", "silver", "bronze"}
        assert derived["router"]["policy"] == "hash"
        assert derived["cache"]["entries"] >= 0

    def test_mip_and_heuristic_modes_flow_through(self):
        cluster = ClusterService(groups=2)
        mips = mip_pool(2, num_items=8, seed=6)
        cluster.submit(mips[0], at=0.0)
        rid = cluster.submit(
            mips[1], at=1e-5, mode="heuristic_only", gap_target=0.1
        )
        responses = cluster.close()
        assert len(responses) == 2
        heur = next(r for r in responses if r.request_id == rid)
        assert heur.mode == "heuristic_only"
