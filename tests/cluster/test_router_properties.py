"""Property-based tests (hypothesis) for the cluster routing tier.

Three properties the sharded tier leans on:

- **balance** — consistent hashing with 64 vnodes keeps the max/mean
  shard key-load bounded (a hot ring arc cannot swallow the cluster);
- **monotonicity** — a group join/leave moves only the keys whose
  owning arc changed, ~K/N of them, and *only* between the touched
  group and the rest (no unrelated key ever changes owner);
- **determinism** — routing is a pure function of (key, live set,
  loads): same inputs, same owner, in any join order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.router import HashRing, VNODES, make_router

settings.register_profile("ci", deadline=None, max_examples=50)
settings.load_profile("ci")


keys_strategy = st.lists(
    st.text(min_size=1, max_size=24), min_size=32, max_size=256, unique=True
)
groups_strategy = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=2, max_size=8, unique=True
)


class TestBalance:
    @given(keys=keys_strategy, groups=groups_strategy)
    def test_max_over_mean_load_bounded(self, keys, groups):
        ring = HashRing(groups)
        counts = {g: 0 for g in groups}
        for key in keys:
            counts[ring.owner(key)] += 1
        mean = len(keys) / len(groups)
        # 64 vnodes/group keeps arc-length variance modest; 2.5x mean is
        # a loose envelope that still fails for a genuinely broken ring
        # (a degenerate ring puts everything on one group: N x mean).
        assert max(counts.values()) <= max(2.5 * mean, 12.0)

    @given(keys=keys_strategy, groups=groups_strategy)
    def test_every_group_owns_something_eventually(self, keys, groups):
        # With >= 32 keys and <= 8 groups a group owning *zero* keys is
        # possible but must be rare; assert the ring at least spreads
        # keys across more than one group.
        ring = HashRing(groups)
        owners = {ring.owner(key) for key in keys}
        assert len(owners) > 1


class TestMonotonicity:
    @given(keys=keys_strategy, groups=groups_strategy)
    def test_join_moves_only_keys_onto_the_joiner(self, keys, groups):
        newcomer = max(groups) + 1
        ring = HashRing(groups)
        before = {key: ring.owner(key) for key in keys}
        ring.join(newcomer)
        after = {key: ring.owner(key) for key in keys}
        moved = {k for k in keys if before[k] != after[k]}
        # Every moved key moved TO the newcomer — never between
        # incumbents (that's the consistent-hashing contract).
        for key in moved:
            assert after[key] == newcomer
        # Expected movement is ~K/N; allow generous sampling slack but
        # rule out a rehash-everything implementation.
        expected = len(keys) / (len(groups) + 1)
        assert len(moved) <= max(3.0 * expected, 12.0)

    @given(keys=keys_strategy, groups=groups_strategy)
    def test_leave_moves_only_the_leavers_keys(self, keys, groups):
        ring = HashRing(groups)
        before = {key: ring.owner(key) for key in keys}
        leaver = groups[0]
        ring.leave(leaver)
        after = {key: ring.owner(key) for key in keys}
        for key in keys:
            if before[key] == leaver:
                assert after[key] != leaver
            else:
                # Keys not owned by the leaver must not move at all.
                assert after[key] == before[key]

    @given(keys=keys_strategy, groups=groups_strategy)
    def test_join_then_leave_is_identity(self, keys, groups):
        newcomer = max(groups) + 1
        ring = HashRing(groups)
        before = {key: ring.owner(key) for key in keys}
        ring.join(newcomer)
        ring.leave(newcomer)
        after = {key: ring.owner(key) for key in keys}
        assert before == after


class TestDeterminism:
    @given(keys=keys_strategy, groups=groups_strategy)
    def test_owner_independent_of_join_order(self, keys, groups):
        forward = HashRing(groups)
        backward = HashRing(list(reversed(groups)))
        for key in keys:
            assert forward.owner(key) == backward.owner(key)

    @given(keys=keys_strategy, groups=groups_strategy)
    def test_repeated_routing_is_stable(self, keys, groups):
        router = make_router("hash")
        for gid in groups:
            router.join(gid)
        load = {g: float(i) for i, g in enumerate(groups)}
        first = [router.route(k, load.get, None) for k in keys]
        second = [router.route(k, load.get, None) for k in keys]
        assert first == second

    @given(keys=keys_strategy, groups=groups_strategy)
    def test_least_loaded_picks_min_load_deterministically(self, keys, groups):
        router = make_router("least_loaded")
        for gid in groups:
            router.join(gid)
        load = {g: float(i % 3) for i, g in enumerate(groups)}
        best = min(groups, key=lambda g: (load[g], g))
        for key in keys[:8]:
            assert router.route(key, load.get, None) == best

    @given(groups=groups_strategy)
    def test_vnode_count_respected(self, groups):
        ring = HashRing(groups)
        assert len(ring._points) <= VNODES * len(groups)
        assert len(ring.groups) == len(groups)
