"""Tests for the UG-style supervisor–worker engine."""

import pytest

from repro.comm.supervisor import (
    SupervisorConfig,
    Task,
    TaskResult,
    run_supervisor_worker,
)
from repro.errors import CommError


def binary_tree_evaluate(depth_limit, cost=1e-3, value_at_leaf=1.0):
    """Evaluate fn producing a complete binary tree of given depth.

    Payloads are (depth, label); leaves report an incumbent equal to
    ``value_at_leaf * label`` so the max label wins.
    """

    def evaluate(payload, incumbent):
        depth, label = payload
        if depth >= depth_limit:
            return TaskResult(compute_seconds=cost, incumbent=value_at_leaf * label)
        children = (
            Task(payload=(depth + 1, label * 2), priority=-label),
            Task(payload=(depth + 1, label * 2 + 1), priority=-label),
        )
        return TaskResult(children=children, compute_seconds=cost)

    return evaluate


ROOT = [Task(payload=(0, 1), priority=0.0)]


def total_nodes(depth):
    return 2 ** (depth + 1) - 1


class TestSequentialBaseline:
    def test_evaluates_whole_tree(self):
        res = run_supervisor_worker(
            ROOT, binary_tree_evaluate(4), SupervisorConfig(num_workers=0)
        )
        assert res.evaluations == total_nodes(4)

    def test_incumbent_is_max_leaf(self):
        res = run_supervisor_worker(
            ROOT, binary_tree_evaluate(3), SupervisorConfig(num_workers=0)
        )
        assert res.incumbent == pytest.approx(15.0)  # max label at depth 3

    def test_makespan_counts_all_work(self):
        res = run_supervisor_worker(
            ROOT,
            binary_tree_evaluate(3, cost=0.5),
            SupervisorConfig(num_workers=0),
        )
        assert res.makespan == pytest.approx(0.5 * total_nodes(3))

    def test_max_evaluations_cap(self):
        res = run_supervisor_worker(
            ROOT,
            binary_tree_evaluate(20),
            SupervisorConfig(num_workers=0, max_evaluations=10),
        )
        assert res.evaluations == 10


class TestDynamicMode:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_all_nodes_evaluated(self, workers):
        res = run_supervisor_worker(
            ROOT, binary_tree_evaluate(5), SupervisorConfig(num_workers=workers)
        )
        assert res.evaluations == total_nodes(5)
        assert res.incumbent == pytest.approx(63.0)

    def test_parallel_speedup(self):
        seq = run_supervisor_worker(
            ROOT, binary_tree_evaluate(7, cost=1e-2), SupervisorConfig(num_workers=0)
        )
        par = run_supervisor_worker(
            ROOT, binary_tree_evaluate(7, cost=1e-2), SupervisorConfig(num_workers=8)
        )
        assert par.makespan < seq.makespan / 3

    def test_work_spread_across_workers(self):
        res = run_supervisor_worker(
            ROOT, binary_tree_evaluate(7), SupervisorConfig(num_workers=4)
        )
        assert len(res.per_worker) == 4
        assert all(count > 0 for count in res.per_worker)
        # Ramp-up keeps the per-worker shares reasonably even.
        assert max(res.per_worker) < 3 * min(res.per_worker)

    def test_ramp_up_off_still_correct(self):
        res = run_supervisor_worker(
            ROOT,
            binary_tree_evaluate(5),
            SupervisorConfig(num_workers=4, ramp_up=False),
        )
        assert res.evaluations == total_nodes(5)

    def test_negative_workers_rejected(self):
        with pytest.raises(CommError):
            run_supervisor_worker(
                ROOT, binary_tree_evaluate(2), SupervisorConfig(num_workers=-1)
            )

    def test_determinism(self):
        cfg = SupervisorConfig(num_workers=3)
        a = run_supervisor_worker(ROOT, binary_tree_evaluate(5), cfg)
        b = run_supervisor_worker(ROOT, binary_tree_evaluate(5), cfg)
        assert a.evaluations == b.evaluations
        assert a.makespan == b.makespan
        assert a.per_worker == b.per_worker


class TestSnapshots:
    def test_snapshots_recorded(self):
        res = run_supervisor_worker(
            ROOT,
            binary_tree_evaluate(5),
            SupervisorConfig(num_workers=2, checkpoint_every=10),
        )
        assert len(res.snapshots) >= 3
        for snap in res.snapshots:
            assert isinstance(snap.tasks, list)

    def test_snapshot_restart_preserves_optimum(self):
        """Restarting the search from any snapshot finds the same best."""
        evaluate = binary_tree_evaluate(6)
        res = run_supervisor_worker(
            ROOT,
            evaluate,
            SupervisorConfig(num_workers=3, checkpoint_every=7),
        )
        assert res.snapshots, "need at least one snapshot"
        for snap in res.snapshots[:5]:
            restart_roots = [Task(payload=p) for p in snap.tasks]
            incumbent = snap.incumbent
            restarted = run_supervisor_worker(
                restart_roots,
                evaluate,
                SupervisorConfig(num_workers=2),
            )
            best = restarted.incumbent
            if incumbent is not None and (best is None or incumbent > best):
                best = incumbent
            assert best == pytest.approx(res.incumbent)

    def test_sequential_snapshots(self):
        res = run_supervisor_worker(
            ROOT,
            binary_tree_evaluate(5),
            SupervisorConfig(num_workers=0, checkpoint_every=9),
        )
        assert len(res.snapshots) == total_nodes(5) // 9


class TestStaticMode:
    def test_static_evaluates_everything(self):
        # Two root tasks so both workers get work.
        roots = [Task(payload=(1, 2)), Task(payload=(1, 3))]
        res = run_supervisor_worker(
            roots,
            binary_tree_evaluate(5),
            SupervisorConfig(num_workers=2, dynamic_load_balancing=False),
        )
        assert res.evaluations == 2 * (2 ** 5 - 1)

    def test_static_imbalance_vs_dynamic(self):
        """A skewed tree leaves static partitioning badly imbalanced."""

        def skewed_evaluate(payload, incumbent):
            depth, label = payload
            # Subtree 0 is deep, subtree 1 is a single node.
            limit = 7 if label % 2 == 0 else 0
            if depth >= limit:
                return TaskResult(compute_seconds=1e-3, incumbent=float(label))
            return TaskResult(
                children=(
                    Task(payload=(depth + 1, label * 2)),
                    Task(payload=(depth + 1, label * 2)),
                ),
                compute_seconds=1e-3,
            )

        roots = [Task(payload=(0, 0)), Task(payload=(0, 1))]
        static = run_supervisor_worker(
            roots,
            skewed_evaluate,
            SupervisorConfig(num_workers=2, dynamic_load_balancing=False),
        )
        dynamic = run_supervisor_worker(
            roots,
            skewed_evaluate,
            SupervisorConfig(num_workers=2),
        )
        assert static.evaluations == dynamic.evaluations
        # Static: one worker does ~everything; dynamic splits the work.
        assert max(static.per_worker) > 50 * max(1, min(static.per_worker))
        assert max(dynamic.per_worker) < 3 * max(1, min(dynamic.per_worker))
        assert dynamic.makespan < static.makespan
