"""Tests for the simulated MPI scheduler."""

import numpy as np
import pytest

from repro.comm.mpi import (
    ANY_SOURCE,
    Allreduce,
    Barrier,
    Bcast,
    Compute,
    Gather,
    Probe,
    Recv,
    Send,
    SimMPI,
)
from repro.errors import CommError, DeadlockError, RankError


class TestPointToPoint:
    def test_ping(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dest=1, payload="hello")
                return "sent"
            msg = yield Recv(source=0)
            return msg.payload

        res = SimMPI(2).run(program)
        assert res.results == ["sent", "hello"]

    def test_ping_pong_clocks_advance(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dest=1, payload=np.zeros(1000))
                reply = yield Recv(source=1)
                return reply.payload
            msg = yield Recv(source=0)
            yield Send(dest=0, payload=msg.payload * 2)
            return None

        res = SimMPI(2).run(program)
        assert res.makespan > 0
        assert res.clocks[0] >= res.clocks[1] - 1e-12

    def test_tag_matching(self):
        def program(rank, size):
            if rank == 0:
                yield Send(dest=1, payload="a", tag=7)
                yield Send(dest=1, payload="b", tag=9)
                return None
            second = yield Recv(source=0, tag=9)
            first = yield Recv(source=0, tag=7)
            return (first.payload, second.payload)

        res = SimMPI(2).run(program)
        assert res.results[1] == ("a", "b")

    def test_any_source(self):
        def program(rank, size):
            if rank == 2:
                got = []
                for _ in range(2):
                    msg = yield Recv(source=ANY_SOURCE)
                    got.append(msg.source)
                return sorted(got)
            yield Send(dest=2, payload=rank)
            return None

        res = SimMPI(3).run(program)
        assert res.results[2] == [0, 1]

    def test_fifo_per_source(self):
        def program(rank, size):
            if rank == 0:
                for i in range(5):
                    yield Send(dest=1, payload=i)
                return None
            got = []
            for _ in range(5):
                msg = yield Recv(source=0)
                got.append(msg.payload)
            return got

        res = SimMPI(2).run(program)
        assert res.results[1] == [0, 1, 2, 3, 4]

    def test_probe(self):
        def program(rank, size):
            if rank == 0:
                empty = yield Probe()
                yield Send(dest=1, payload="x")
                return empty
            msg = yield Recv(source=0)
            nonempty_anymore = yield Probe()
            return (msg.payload, nonempty_anymore)

        res = SimMPI(2).run(program)
        assert res.results[0] is False
        assert res.results[1] == ("x", False)

    def test_send_to_invalid_rank(self):
        def program(rank, size):
            yield Send(dest=5)

        with pytest.raises(RankError):
            SimMPI(2).run(program)

    def test_message_cost_scales_with_bytes(self):
        def make_program(nbytes):
            def program(rank, size):
                if rank == 0:
                    yield Send(dest=1, payload=np.zeros(nbytes // 8))
                    return None
                yield Recv(source=0)
                return None

            return program

        small = SimMPI(2).run(make_program(8_000)).makespan
        large = SimMPI(2).run(make_program(8_000_000)).makespan
        assert large > 100 * small


class TestCompute:
    def test_compute_advances_clock(self):
        def program(rank, size):
            yield Compute(seconds=1.5)
            return rank

        res = SimMPI(3).run(program)
        assert all(c == pytest.approx(1.5) for c in res.clocks)

    def test_negative_compute_rejected(self):
        def program(rank, size):
            yield Compute(seconds=-1.0)

        with pytest.raises(CommError):
            SimMPI(1).run(program)


class TestCollectives:
    def test_barrier_aligns_clocks(self):
        def program(rank, size):
            yield Compute(seconds=float(rank))
            yield Barrier()
            return None

        res = SimMPI(4).run(program)
        assert len(set(round(c, 12) for c in res.clocks)) == 1
        assert res.clocks[0] > 3.0  # slowest rank dominates

    def test_bcast(self):
        def program(rank, size):
            value = yield Bcast(root=1, payload="gold" if rank == 1 else None)
            return value

        res = SimMPI(3).run(program)
        assert res.results == ["gold"] * 3

    def test_allreduce_max(self):
        def program(rank, size):
            best = yield Allreduce(value=float(rank * 10), op=max)
            return best

        res = SimMPI(4).run(program)
        assert res.results == [30.0] * 4

    def test_allreduce_sum(self):
        def program(rank, size):
            total = yield Allreduce(value=rank + 1, op=lambda a, b: a + b)
            return total

        res = SimMPI(4).run(program)
        assert res.results == [10] * 4

    def test_gather(self):
        def program(rank, size):
            got = yield Gather(value=rank * rank, root=0)
            return got

        res = SimMPI(3).run(program)
        assert res.results[0] == [0, 1, 4]
        assert res.results[1] is None and res.results[2] is None

    def test_collective_excludes_finished_ranks(self):
        def program(rank, size):
            if rank == 0:
                return "early"
            yield Barrier()
            return "late"

        res = SimMPI(3).run(program)
        assert res.results == ["early", "late", "late"]

    def test_single_rank_collectives(self):
        def program(rank, size):
            yield Barrier()
            v = yield Allreduce(value=5, op=max)
            g = yield Gather(value=7, root=0)
            return (v, g)

        res = SimMPI(1).run(program)
        assert res.results == [(5, [7])]


class TestDeadlock:
    def test_mutual_recv_deadlocks(self):
        def program(rank, size):
            msg = yield Recv(source=1 - rank)
            return msg

        with pytest.raises(DeadlockError, match="rank 0"):
            SimMPI(2).run(program)

    def test_partial_collective_deadlocks(self):
        def program(rank, size):
            if rank == 0:
                yield Barrier()
            else:
                yield Recv(source=0)

        with pytest.raises(DeadlockError):
            SimMPI(2).run(program)


class TestDeterminism:
    def test_identical_reruns(self):
        def program(rank, size):
            rng_val = rank * 3 + 1
            yield Compute(seconds=0.1 * rng_val)
            if rank:
                yield Send(dest=0, payload=rng_val)
                return None
            got = []
            for _ in range(size - 1):
                msg = yield Recv()
                got.append((msg.source, msg.payload))
            return got

        first = SimMPI(5).run(program)
        second = SimMPI(5).run(program)
        assert first.results == second.results
        assert first.clocks == second.clocks


class TestReduceScatter:
    def test_reduce_to_root(self):
        from repro.comm.mpi import Reduce

        def program(rank, size):
            got = yield Reduce(value=rank + 1, op=lambda a, b: a * b, root=1)
            return got

        res = SimMPI(4).run(program)
        assert res.results[1] == 24  # 1*2*3*4
        assert res.results[0] is None and res.results[2] is None

    def test_scatter_distributes(self):
        from repro.comm.mpi import Scatter

        def program(rank, size):
            values = [10 * r for r in range(size)] if rank == 0 else None
            mine = yield Scatter(values=values, root=0)
            return mine

        res = SimMPI(3).run(program)
        assert res.results == [0, 10, 20]

    def test_scatter_wrong_count_raises(self):
        from repro.comm.mpi import Scatter

        def program(rank, size):
            values = [1] if rank == 0 else None
            yield Scatter(values=values, root=0)

        with pytest.raises(CommError):
            SimMPI(3).run(program)

    def test_reduce_mismatched_roots_raises(self):
        from repro.comm.mpi import Reduce

        def program(rank, size):
            yield Reduce(value=1, op=max, root=rank % 2)

        with pytest.raises(CommError):
            SimMPI(2).run(program)
