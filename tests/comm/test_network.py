"""Network model and payload sizing tests."""

import numpy as np
import pytest

from repro.comm.network import (
    SHARED_MEMORY,
    SUMMIT_FAT_TREE,
    NetworkSpec,
    payload_bytes,
)
from repro.comm.supervisor import Task


class TestNetworkSpec:
    def test_message_time_alpha_beta(self):
        net = NetworkSpec(name="t", latency=1e-6, bandwidth=1e9)
        assert net.message_time(0) == pytest.approx(1e-6)
        assert net.message_time(10**9) == pytest.approx(1.0 + 1e-6)

    def test_shared_memory_faster(self):
        nbytes = 1024
        assert SHARED_MEMORY.message_time(nbytes) < SUMMIT_FAT_TREE.message_time(nbytes)


class TestPayloadBytes:
    def test_scalars(self):
        assert payload_bytes(None) == 8
        assert payload_bytes(42) == 8
        assert payload_bytes(3.14) == 8
        assert payload_bytes(True) == 8

    def test_numpy_arrays(self):
        assert payload_bytes(np.zeros(100)) == 800
        assert payload_bytes(np.zeros((10, 10), dtype=np.float32)) == 400

    def test_strings_and_bytes(self):
        assert payload_bytes("abc") == 3
        assert payload_bytes(b"abcd") == 4
        assert payload_bytes("héllo") == len("héllo".encode())

    def test_containers_recursive(self):
        assert payload_bytes([1, 2, 3]) == 16 + 24
        assert payload_bytes({"k": 1}) == 16 + 1 + 8
        assert payload_bytes((np.zeros(2), 5)) == 16 + 16 + 8

    def test_comm_nbytes_hook(self):
        task = Task(payload="x", nbytes=12345)
        assert payload_bytes(task) == 12345

    def test_unknown_object_flat_envelope(self):
        class Opaque:
            pass

        assert payload_bytes(Opaque()) == 256
