"""Property-based tests for the simulated MPI scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.mpi import ANY_SOURCE, Allreduce, Compute, Recv, Send, SimMPI


@settings(max_examples=30, deadline=None)
@given(
    num_ranks=st.integers(min_value=2, max_value=6),
    rounds=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_matched_gather_never_deadlocks(num_ranks, rounds, seed):
    """Any all-to-root pattern with matched counts completes, and the
    root receives exactly rounds x (num_ranks-1) messages."""

    def program(rank, size):
        if rank == 0:
            got = 0
            for _ in range(rounds * (size - 1)):
                yield Recv(source=ANY_SOURCE)
                got += 1
            return got
        rng_delay = (rank * 7919 + seed) % 13 / 1000.0
        for _ in range(rounds):
            yield Compute(seconds=rng_delay)
            yield Send(dest=0, payload=rank)
        return None

    result = SimMPI(num_ranks).run(program)
    assert result.results[0] == rounds * (num_ranks - 1)
    assert result.makespan >= 0.0


@settings(max_examples=30, deadline=None)
@given(
    num_ranks=st.integers(min_value=1, max_value=8),
    values=st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=8, max_size=8
    ),
)
def test_property_allreduce_agrees_with_python(num_ranks, values):
    """Allreduce(sum) equals Python's sum over the per-rank values."""
    values = values[:num_ranks]

    def program(rank, size):
        total = yield Allreduce(value=values[rank], op=lambda a, b: a + b)
        return total

    result = SimMPI(num_ranks).run(program)
    expected = sum(values)
    assert all(r == expected for r in result.results)


@settings(max_examples=25, deadline=None)
@given(
    chain=st.integers(min_value=2, max_value=7),
    payload_size=st.integers(min_value=1, max_value=1000),
)
def test_property_relay_clock_monotone_along_chain(chain, payload_size):
    """A message relayed down a chain arrives later at each hop."""

    def program(rank, size):
        if rank == 0:
            yield Send(dest=1, payload=np.zeros(payload_size))
            return 0.0
        msg = yield Recv(source=rank - 1)
        if rank + 1 < size:
            yield Send(dest=rank + 1, payload=msg.payload)
        return msg.arrival

    result = SimMPI(chain).run(program)
    arrivals = result.results[1:]
    assert all(b > a for a, b in zip(arrivals, arrivals[1:])) or len(arrivals) < 2
    assert all(a > 0 for a in arrivals)
