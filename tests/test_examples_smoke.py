"""Smoke tests: the fast examples must run end-to-end without error."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "batched_knapsack_gpu.py",
    "device_timeline.py",
    "flowshop_ivm.py",
    "sensitivity_and_fixing.py",
    "serve_traffic.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
