"""SolveOptions.deadline reaches the heuristic portfolio (satellite of
the cluster PR; previously only B&B honored the deadline).

A ticking clock makes the budget expire after a fixed number of guard
polls — mid-portfolio, deterministically — and the portfolio must stop
at the next phase/chunk boundary with a certified anytime result:
whatever incumbents exist, the root-LP dual bound, and a finite gap
when an incumbent was found.
"""

import numpy as np
import pytest

from repro.api import SolveMode, SolveOptions, solve
from repro.guard.budget import DeadlineBudget, GuardContext, ManualClock, guarding
from repro.mip.portfolio import PortfolioOptions, run_portfolio
from repro.problems.knapsack import generate_knapsack


class TickingClock:
    """Advances one step per read: expiry after a fixed poll count."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def ticking_guard(seconds: float) -> GuardContext:
    return GuardContext(
        budgets=[DeadlineBudget(seconds, clock=TickingClock(), label="test")]
    )


def expired_guard() -> GuardContext:
    clock = ManualClock()
    budget = DeadlineBudget(0.5, clock=clock, label="test")
    clock.advance(1.0)
    return GuardContext(budgets=[budget])


PROBLEM = generate_knapsack(14, seed=3)


class TestPortfolioDeadline:
    def test_mid_portfolio_expiry_returns_certified_anytime_result(self):
        # Generous enough for the feasibility jump to place incumbents,
        # tight enough to expire before the LNS rounds run dry.
        with guarding(ticking_guard(6.0)):
            result = run_portfolio(
                PROBLEM,
                PortfolioOptions(
                    restarts=8, n_jobs=4, fj_sweeps=40, lns_rounds=6, seed=0
                ),
            )
        assert result.stats["deadline_stops"] >= 1
        # Anytime contract: a certified incumbent with a true dual bound.
        assert result.best is not None
        assert np.isfinite(result.best.objective)
        assert np.isfinite(result.dual_bound)
        assert result.dual_bound >= result.best.objective - 1e-9
        assert np.isfinite(result.gap)

    def test_already_expired_budget_skips_every_phase(self):
        with guarding(expired_guard()):
            result = run_portfolio(
                PROBLEM, PortfolioOptions(restarts=8, n_jobs=4, seed=0)
            )
        assert result.stats["deadline_stops"] >= 1
        assert result.stats["fj_sweeps"] == 0
        assert result.stats["fnp_rounds"] == 0
        assert result.stats["lns_rounds"] == 0

    def test_no_guard_means_no_stops(self):
        result = run_portfolio(
            PROBLEM, PortfolioOptions(restarts=4, n_jobs=4, lns_rounds=2, seed=0)
        )
        assert result.stats["deadline_stops"] == 0

    def test_solve_options_deadline_threads_into_heuristic_only(self):
        # The public path: api.solve installs the guard context from
        # SolveOptions.deadline; heuristic_only runs the portfolio under
        # it.  A generous real-time deadline must not change the answer;
        # the plumbing is what this pins (the ticking-clock tests above
        # pin the expiry behaviour).
        report = solve(
            PROBLEM,
            options=SolveOptions(mode=SolveMode.HEURISTIC_ONLY, deadline=60.0),
        )
        assert report.objective is not None
