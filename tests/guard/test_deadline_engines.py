"""Deterministic deadline hits, per engine, under injected clocks.

Each engine polls the active guard context inside its hot loop; with an
already-expired :class:`ManualClock` budget the very first poll must
surrender with a structured ``TIME_LIMIT`` — no exception, no hang.
The MIP solvers additionally get a *ticking* clock (each poll advances
time) so the budget expires mid-tree and the anytime contract — finite
certified dual bound at the stop — can be asserted deterministically.
"""

import numpy as np
import pytest

from repro.guard.budget import DeadlineBudget, GuardContext, ManualClock, guarding
from repro.lp.dual_simplex import dual_simplex_resolve
from repro.lp.interior_point import interior_point_solve
from repro.lp.pdhg import solve_lp_pdhg
from repro.lp.pdhg_batch import solve_lp_pdhg_batch
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_standard_form
from repro.mip.batch_solver import BatchedNodeSolver, BatchedSolverOptions
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal


class TickingClock:
    """A clock that advances one step per read — deterministic expiry
    after a fixed number of guard polls, independent of host speed."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def expired_guard():
    clock = ManualClock()
    budget = DeadlineBudget(0.5, clock=clock, label="test")
    clock.advance(1.0)
    return GuardContext(budgets=[budget])


def make_lp(seed=0, n=10, m=6):
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.1, 1.0, (m, n))
    return LinearProgram(
        c=rng.uniform(0.5, 2.0, n),
        a_ub=a,
        b_ub=a @ np.ones(n) + 0.5,
        lb=np.zeros(n),
        ub=np.full(n, 3.0),
    )


class TestLPEngines:
    def test_simplex(self):
        sf = make_lp().to_standard_form()
        with guarding(expired_guard()):
            res = solve_standard_form(sf)
        assert res.status is LPStatus.TIME_LIMIT

    def test_dual_simplex(self):
        sf = make_lp(seed=1).to_standard_form()
        base = solve_standard_form(sf)
        assert base.status is LPStatus.OPTIMAL
        with guarding(expired_guard()):
            res = dual_simplex_resolve(sf, base.basis)
        assert res.status is LPStatus.TIME_LIMIT

    def test_interior_point(self):
        sf = make_lp(seed=2).to_standard_form()
        with guarding(expired_guard()):
            res = interior_point_solve(sf)
        assert res.status is LPStatus.TIME_LIMIT

    def test_pdhg(self):
        with guarding(expired_guard()):
            res = solve_lp_pdhg(make_lp(seed=3))
        assert res.status is LPStatus.TIME_LIMIT

    def test_pdhg_batch(self):
        lps = [make_lp(seed=s) for s in (4, 5, 6)]
        with guarding(expired_guard()):
            res = solve_lp_pdhg_batch(lps)
        assert all(s is LPStatus.TIME_LIMIT for s in res.statuses)

    def test_lockstep_simplex_batch(self):
        from repro.lp.batch_simplex import solve_lp_batch

        rng = np.random.default_rng(8)
        lps = [
            LinearProgram(
                c=rng.uniform(0.5, 2.0, 6),
                a_ub=(a := rng.uniform(0.1, 1.0, (4, 6))),
                b_ub=a @ np.ones(6) + 0.5,
            )
            for _ in range(3)
        ]
        with guarding(expired_guard()):
            res = solve_lp_batch(lps)
        assert all(s is LPStatus.TIME_LIMIT for s in res.statuses)

    def test_unguarded_solves_still_finish(self):
        # The guard hooks must be inert without an active context.
        res = solve_standard_form(make_lp(seed=7).to_standard_form())
        assert res.status is LPStatus.OPTIMAL


class TestMIPAnytime:
    def knapsack(self):
        # Strongly correlated knapsacks force a deep tree (thousands of
        # nodes when solved exactly) so a 60-poll budget stops midway.
        return generate_knapsack(20, seed=11, correlation="strong")

    def midway_guard(self, polls: int):
        # One tick per poll: the budget expires after `polls` guard
        # checks, i.e. after some-but-not-all tree work is done.
        return GuardContext(
            budgets=[DeadlineBudget(float(polls), clock=TickingClock(), label="tick")]
        )

    def test_serial_bnb_anytime_stop(self):
        problem = self.knapsack()
        with guarding(self.midway_guard(60)) as ctx:
            res = BranchAndBoundSolver(problem, SolverOptions()).solve()
        assert res.status is MIPStatus.TIME_LIMIT
        assert res.status.anytime
        assert np.isfinite(res.best_bound)
        assert ctx.counters["deadline"] == 1
        # The certified bound must dominate any incumbent.
        if res.x is not None:
            assert problem.is_feasible(res.x)
            assert res.best_bound >= res.objective - 1e-9

    def test_serial_bnb_bound_is_sound(self):
        problem = self.knapsack()
        optimum, _ = knapsack_dp_optimal(problem)  # exact DP oracle
        with guarding(self.midway_guard(60)):
            partial = BranchAndBoundSolver(problem, SolverOptions()).solve()
        # incumbent <= true optimum <= anytime dual bound
        if np.isfinite(partial.objective):
            assert partial.objective <= optimum + 1e-9
        assert partial.best_bound >= optimum - 1e-9

    def test_batched_bnb_anytime_stop(self):
        problem = self.knapsack()
        with guarding(self.midway_guard(60)):
            res = BatchedNodeSolver(
                problem, BatchedSolverOptions(batch_size=4)
            ).solve()
        assert res.status is MIPStatus.TIME_LIMIT
        assert np.isfinite(res.best_bound)

    def test_batched_bound_is_sound(self):
        problem = self.knapsack()
        optimum, _ = knapsack_dp_optimal(problem)
        with guarding(self.midway_guard(60)):
            partial = BatchedNodeSolver(
                problem, BatchedSolverOptions(batch_size=4)
            ).solve()
        if np.isfinite(partial.objective):
            assert partial.objective <= optimum + 1e-9
        assert partial.best_bound >= optimum - 1e-9

    def test_deterministic_across_runs(self):
        problem = self.knapsack()

        def run():
            with guarding(self.midway_guard(60)):
                res = BranchAndBoundSolver(problem, SolverOptions()).solve()
            return (
                res.status,
                res.objective,
                res.best_bound,
                res.stats.nodes_processed,
            )

        assert run() == run()
