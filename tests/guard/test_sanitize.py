"""Sanitizer semantics: policy table, verdicts, and the two properties
that make REPAIR safe to run silently — idempotence and exact optimum
preservation."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SanitizeError
from repro.guard.sanitize import (
    SanitizeOptions,
    SanitizePolicy,
    sanitize_lp,
    sanitize_mip,
    sanitize_problem,
)
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp
from repro.mip.problem import MIPProblem

PROP = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def dirty_feasible_lp(seed: int, n: int, m: int) -> LinearProgram:
    """A bounded feasible LP with injected repairable pathologies.

    The clean core is ``max c x  s.t.  A x <= b, 0 <= x <= 2`` with
    ``b = A @ 1 + margin`` (so x = 1 is strictly feasible).  On top we
    stack a duplicate of row 0 with a looser rhs and an all-zero row
    with a satisfiable rhs — both exactly redundant, so the optimum of
    the dirty instance equals the optimum of the repaired one.
    """
    rng = np.random.default_rng(seed)
    c = rng.uniform(0.5, 2.0, n)
    a = rng.uniform(0.1, 1.0, (m, n))
    b = a @ np.ones(n) + rng.uniform(0.5, 1.0, m)
    rows = np.vstack([a, a[0], np.zeros(n)])
    rhs = np.concatenate([b, [b[0] + 1.0], [0.5]])
    return LinearProgram(c=c, a_ub=rows, b_ub=rhs, lb=np.zeros(n), ub=np.full(n, 2.0))


class TestProperties:
    @PROP
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 8),
        m=st.integers(1, 6),
    )
    def test_repair_is_idempotent(self, seed, n, m):
        report = sanitize_lp(dirty_feasible_lp(seed, n, m))
        assert report.repaired  # the injected junk was found
        again = sanitize_lp(report.problem)
        assert again.clean
        assert again.problem is report.problem  # no rewrite second time

    @PROP
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 8),
        m=st.integers(1, 6),
    )
    def test_repair_preserves_optimum(self, seed, n, m):
        dirty = dirty_feasible_lp(seed, n, m)
        report = sanitize_lp(dirty)
        before = solve_lp(dirty)
        after = solve_lp(report.problem)
        assert before.status is LPStatus.OPTIMAL
        assert after.status is LPStatus.OPTIMAL
        assert after.objective == pytest.approx(before.objective, rel=1e-9)


class TestPolicies:
    def nan_lp(self):
        return LinearProgram(c=[float("nan"), 1.0], ub=[1.0, 1.0])

    def test_warn_never_raises_never_rewrites(self):
        lp = self.nan_lp()
        report = sanitize_lp(lp, policy=SanitizePolicy.WARN)
        assert report.problem is lp
        assert report.fatal

    def test_repair_rejects_fatal(self):
        with pytest.raises(SanitizeError):
            sanitize_lp(self.nan_lp())

    def test_reject_rejects_everything(self):
        lp = dirty_feasible_lp(0, 3, 2)
        with pytest.raises(SanitizeError):
            sanitize_lp(lp, policy=SanitizePolicy.REJECT)

    def test_clean_problem_passes_untouched(self):
        lp = LinearProgram(c=[1.0, 2.0], a_ub=[[1.0, 1.0]], b_ub=[1.0], ub=[1.0, 1.0])
        for policy in SanitizePolicy:
            report = sanitize_lp(lp, policy=policy)
            assert report.clean
            assert report.problem is lp


class TestVerdicts:
    def test_empty_row_with_impossible_rhs(self):
        lp = LinearProgram(
            c=[1.0], a_ub=[[0.0]], b_ub=[-1.0], ub=[1.0]
        )  # 0*x <= -1
        report = sanitize_lp(lp)
        assert report.verdict == "infeasible"

    def test_conflicting_duplicate_equalities(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_eq=[[1.0, 1.0], [1.0, 1.0]],
            b_eq=[1.0, 2.0],
            ub=[5.0, 5.0],
        )
        report = sanitize_lp(lp)
        assert report.verdict == "infeasible"

    def test_feasible_instance_has_no_verdict(self):
        report = sanitize_lp(dirty_feasible_lp(1, 4, 3))
        assert report.verdict is None


class TestRepairs:
    def test_dynamic_range_rescaled(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            a_ub=[[1e-6, 1e-6], [1e7, 1e7]],
            b_ub=[1.0, 1e7],
            ub=[10.0, 10.0],
        )
        report = sanitize_lp(lp, options=SanitizeOptions(range_limit=1e10))
        assert "dynamic_range" in report.repaired
        mags = np.max(np.abs(report.problem.a_ub), axis=1)
        np.testing.assert_allclose(mags, 1.0)
        # Rescaling exposed the rows as duplicates; the fixpoint pass
        # then collapsed them to the tighter constraint (x1+x2 <= 1).
        assert "duplicate_row" in report.repaired
        assert report.problem.a_ub.shape[0] == 1
        assert report.problem.b_ub[0] == pytest.approx(1.0)

    def test_duplicate_ub_rows_keep_tighter_rhs(self):
        lp = LinearProgram(
            c=[1.0],
            a_ub=[[1.0], [1.0]],
            b_ub=[5.0, 3.0],
            ub=[10.0],
        )
        report = sanitize_lp(lp)
        assert "duplicate_row" in report.repaired
        assert report.problem.a_ub.shape[0] == 1
        assert report.problem.b_ub[0] == 3.0

    def test_mip_repair_carries_integer_mask(self):
        base = dirty_feasible_lp(2, 4, 3)
        mip = MIPProblem(
            c=base.c,
            integer=np.array([True, False, True, False]),
            a_ub=base.a_ub,
            b_ub=base.b_ub,
            lb=base.lb,
            ub=base.ub,
            name="dirty-mip",
        )
        report = sanitize_mip(mip)
        assert report.repaired
        assert isinstance(report.problem, MIPProblem)
        assert report.problem.name == "dirty-mip"
        np.testing.assert_array_equal(report.problem.integer, mip.integer)

    def test_dispatch_on_problem_type(self):
        lp = dirty_feasible_lp(3, 3, 2)
        assert isinstance(sanitize_problem(lp).problem, LinearProgram)
