"""IterationWatchdog signal detection, per pathology."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.guard.budget import GuardContext, guarding
from repro.guard.watchdog import (
    IterationWatchdog,
    WatchdogOptions,
    WatchdogSignal,
)


class TestOptionsValidation:
    def test_rejects_bad_thresholds(self):
        with pytest.raises(ReproError):
            WatchdogOptions(stall_window=0)
        with pytest.raises(ReproError):
            WatchdogOptions(cycle_repeats=1)
        with pytest.raises(ReproError):
            WatchdogOptions(diverge_factor=1.0)


class TestSignals:
    def test_ok_while_improving(self):
        dog = IterationWatchdog("t", WatchdogOptions(stall_window=5))
        for i in range(50):
            assert dog.observe(i, merit=100.0 - i).ok

    def test_stall_after_window(self):
        dog = IterationWatchdog("t", WatchdogOptions(stall_window=5))
        assert dog.observe(0, merit=1.0).ok
        signals = [dog.observe(i, merit=1.0 + 1e-15 * i) for i in range(1, 20)]
        assert WatchdogSignal.STALL in signals
        # 1e-15 jitter defeats the exact-repeat cycle detector, so the
        # stall detector is what must fire here.
        assert WatchdogSignal.CYCLING not in signals

    def test_improvement_resets_stall(self):
        dog = IterationWatchdog("t", WatchdogOptions(stall_window=5))
        merit = 100.0
        for i in range(40):
            if i % 4 == 0:
                merit -= 1.0  # real progress every 4th observation
            assert dog.observe(i, merit=merit + 1e-15 * (i % 4)).ok

    def test_diverged(self):
        dog = IterationWatchdog("t", WatchdogOptions(diverge_factor=100.0))
        assert dog.observe(0, merit=1.0).ok
        assert dog.observe(1, merit=1e6) is WatchdogSignal.DIVERGED

    def test_cycling_on_exact_repeats(self):
        dog = IterationWatchdog("t", WatchdogOptions(cycle_repeats=3))
        assert dog.observe(0, merit=7.0).ok
        signals = [dog.observe(i, merit=7.0) for i in range(1, 6)]
        assert WatchdogSignal.CYCLING in signals

    def test_nonfinite_merit(self):
        dog = IterationWatchdog("t")
        assert dog.observe(0, merit=float("nan")) is WatchdogSignal.NONFINITE

    def test_nonfinite_vector(self):
        dog = IterationWatchdog("t")
        x = np.array([1.0, np.inf, 3.0])
        assert dog.observe(0, merit=1.0, vector=x) is WatchdogSignal.NONFINITE

    def test_vector_check_can_be_disabled(self):
        dog = IterationWatchdog("t", WatchdogOptions(check_vector=False))
        x = np.array([1.0, np.inf])
        assert dog.observe(0, merit=1.0, vector=x).ok

    def test_sense_max_orients_merit(self):
        # For a maximizing engine a growing objective is progress, not
        # divergence-free stalling.
        dog = IterationWatchdog("t", WatchdogOptions(stall_window=3), sense="max")
        for i in range(20):
            assert dog.observe(i, merit=float(i)).ok

    def test_no_merit_is_ok(self):
        dog = IterationWatchdog("t")
        assert dog.observe(0).ok


class TestEventReporting:
    def test_trip_notes_into_active_context(self):
        with guarding(GuardContext()) as ctx:
            dog = IterationWatchdog("enginex")
            dog.observe(3, merit=float("nan"))
        assert ctx.counters["watchdog"] == 1
        event = ctx.events[0].to_dict()
        assert event["engine"] == "enginex"
        assert event["signal"] == "nonfinite"
        assert event["iteration"] == 3

    def test_trip_without_context_is_silent(self):
        dog = IterationWatchdog("t")
        assert dog.observe(0, merit=float("inf")) is WatchdogSignal.NONFINITE
