"""Escalation ladder: rung semantics and climb control."""

import numpy as np
import pytest

from repro.guard.budget import DeadlineBudget, GuardContext, ManualClock, guarding
from repro.guard.escalate import (
    LADDER,
    escalate_lp,
    perturb_standard_form,
    rescale_standard_form,
)
from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import SimplexOptions, solve_standard_form


def make_sf(seed=0, n=8, m=5):
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.1, 1.0, (m, n))
    b = a @ np.ones(n) + rng.uniform(0.5, 1.0, m)
    lp = LinearProgram(
        c=rng.uniform(0.5, 2.0, n),
        a_ub=a,
        b_ub=b,
        lb=np.zeros(n),
        ub=np.full(n, 3.0),
    )
    return lp.to_standard_form()


class TestRungs:
    def test_rescale_preserves_optimum_and_duals(self):
        sf = make_sf(seed=3)
        base = solve_standard_form(sf)
        scaled, scale = rescale_standard_form(sf)
        res = solve_standard_form(scaled)
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(base.objective, rel=1e-9)
        assert np.all(scale > 0)
        # Mapped-back duals satisfy the original complementary pricing.
        np.testing.assert_allclose(res.duals / scale, base.duals, atol=1e-7)

    def test_perturb_is_seeded_and_tiny(self):
        sf = make_sf(seed=4)
        p1 = perturb_standard_form(sf, seed=7)
        p2 = perturb_standard_form(sf, seed=7)
        np.testing.assert_array_equal(p1.c, p2.c)
        assert np.max(np.abs(p1.c - sf.c)) <= 1e-7 * max(1.0, np.max(np.abs(sf.c)))
        # A different seed gives a different tie-break.
        p3 = perturb_standard_form(sf, seed=8)
        assert np.any(p3.c != p1.c)


class TestClimb:
    def test_usable_first_result_skips_ladder(self):
        sf = make_sf(seed=1)
        outcome = escalate_lp(sf)
        assert outcome.result.status is LPStatus.OPTIMAL
        assert not outcome.escalated

    def test_iteration_limit_escalates_to_usable(self):
        sf = make_sf(seed=2, n=20, m=12)
        options = SimplexOptions(max_iterations=1)
        first = solve_standard_form(sf, options=options)
        assert first.status is LPStatus.ITERATION_LIMIT
        with guarding(GuardContext()) as ctx:
            outcome = escalate_lp(sf, options=options, first=first)
        assert outcome.escalated
        assert all(step in LADDER for step in outcome.steps)
        assert outcome.result.status is LPStatus.OPTIMAL
        # Every climbed rung left a guard event.
        assert ctx.counters["escalate"] == len(outcome.steps)
        # The escalated objective matches an unconstrained solve.
        reference = solve_standard_form(sf)
        assert outcome.result.objective == pytest.approx(
            reference.objective, rel=1e-5
        )

    def test_expired_budget_stops_the_climb(self):
        sf = make_sf(seed=5)
        clock = ManualClock()
        budget = DeadlineBudget(0.5, clock=clock)
        clock.advance(1.0)
        first = LPResult(status=LPStatus.ITERATION_LIMIT, iterations=10)
        with guarding(GuardContext(budgets=[budget])):
            outcome = escalate_lp(sf, first=first)
        assert outcome.steps == []
        assert outcome.result is first

    def test_ladder_always_returns_a_result(self):
        # Even when every rung is starved to one iteration the ladder
        # must come back with the least-bad result, never raise.
        sf = make_sf(seed=6, n=10, m=6)
        options = SimplexOptions(max_iterations=1)
        first = solve_standard_form(sf, options=options)
        outcome = escalate_lp(sf, options=options, first=first)
        assert outcome.result is not None
        assert isinstance(outcome.result.status, LPStatus)
