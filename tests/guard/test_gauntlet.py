"""The pathological corpus must pass the guard gauntlet end to end."""

import pytest

from repro.guard.gauntlet import run_gauntlet
from repro.problems.pathological import case_by_name, pathological_corpus


class TestCorpus:
    def test_names_are_unique_and_stable(self):
        names = [case.name for case in pathological_corpus()]
        assert len(names) == len(set(names))
        assert names == [case.name for case in pathological_corpus()]

    def test_case_by_name(self):
        case = case_by_name("nan-objective")
        assert case.expect == "reject"
        with pytest.raises(KeyError):
            case_by_name("no-such-case")

    def test_every_expectation_kind_is_covered(self):
        kinds = {case.expect for case in pathological_corpus()}
        assert kinds == {"reject", "repair", "infeasible", "solve", "anytime"}


class TestGauntlet:
    def test_full_corpus_passes(self):
        report = run_gauntlet(deadline=30.0)
        failures = [run for run in report.runs if not run.ok]
        assert report.ok, "; ".join(
            f"{run.case}: {run.outcome} ({run.detail})" for run in failures
        )
        assert len(report.runs) == len(pathological_corpus())

    def test_no_uncaught_exceptions(self):
        report = run_gauntlet(deadline=30.0)
        escaped = [run for run in report.runs if run.detail.startswith("UNCAUGHT")]
        assert not escaped

    def test_report_round_trips_to_dict(self):
        report = run_gauntlet(cases=[case_by_name("empty-row")])
        (run,) = report.runs
        data = run.to_dict()
        assert data["case"] == "empty-row"
        assert data["ok"] is True
