"""Guard features at the ``repro.api.solve`` front door."""

import numpy as np
import pytest

from repro.api import SolveOptions, solve
from repro.errors import ReproError, SanitizeError
from repro.lp.problem import LinearProgram
from repro.mip.batch_solver import BatchedSolverOptions
from repro.mip.solver import SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal


class TestDeadline:
    def test_deadline_returns_anytime_report(self):
        problem = generate_knapsack(20, seed=11, correlation="strong")
        report = solve(problem, SolveOptions(deadline=0.05))
        assert report.status == "time_limit"
        assert not report.ok
        guard = report.metrics["guard"]
        assert guard["counters"]["deadline"] == 1

    def test_deadline_bound_is_sound(self):
        problem = generate_knapsack(20, seed=11, correlation="strong")
        optimum, _ = knapsack_dp_optimal(problem)
        report = solve(problem, SolveOptions(deadline=0.05))
        assert report.best_bound >= optimum - 1e-9
        if np.isfinite(report.objective):
            assert report.objective <= optimum + 1e-9

    def test_generous_deadline_solves_clean(self):
        problem = generate_knapsack(10, seed=2)
        optimum, _ = knapsack_dp_optimal(problem)
        report = solve(problem, SolveOptions(deadline=300.0))
        assert report.ok
        assert report.objective == pytest.approx(optimum)
        # No deadline was hit, so no guard metrics are attached.
        assert "guard" not in report.metrics


class TestSanitize:
    def dirty_lp(self):
        # One redundant all-zero row; optimum x = (1, 1), objective 3.
        return LinearProgram(
            c=[1.0, 2.0],
            a_ub=[[1.0, 1.0], [0.0, 0.0]],
            b_ub=[2.0, 0.5],
            ub=[1.0, 1.0],
        )

    def test_repair_then_solve(self):
        report = solve(self.dirty_lp(), SolveOptions(sanitize="repair"))
        assert report.ok
        assert report.objective == pytest.approx(3.0)
        assert "empty_row" in report.metrics["sanitize"]["repaired"]

    def test_proven_infeasible_short_circuits(self):
        lp = LinearProgram(c=[1.0], a_ub=[[0.0]], b_ub=[-1.0], ub=[1.0])
        report = solve(lp, SolveOptions(sanitize="repair"))
        assert report.status == "infeasible"
        assert report.x is None
        assert report.metrics["sanitize"]["verdict"] == "infeasible"

    def test_reject_policy_raises(self):
        with pytest.raises(SanitizeError):
            solve(self.dirty_lp(), SolveOptions(sanitize="reject"))

    def test_warn_policy_reports_without_rewriting(self):
        report = solve(self.dirty_lp(), SolveOptions(sanitize="warn"))
        assert report.ok
        assert report.metrics["sanitize"]["repaired"] == []
        assert not report.metrics["sanitize"]["clean"]

    def test_clean_problem_sanitizes_silently(self):
        problem = generate_knapsack(8, seed=1)
        report = solve(problem, SolveOptions(sanitize="repair"))
        assert report.ok
        assert report.metrics["sanitize"]["clean"]


class TestNumericalDegradation:
    """A post-ladder NUMERICAL surrender with no incumbent walks the
    strategy degradation chain instead of stopping empty-handed."""

    def _break_cpu_engine(self, monkeypatch):
        from repro.lp.result import LPResult, LPStatus
        from repro.mip.solver import BranchAndBoundSolver
        from repro.strategies.cpu_orchestrated import CpuOrchestratedEngine

        monkeypatch.setattr(
            CpuOrchestratedEngine,
            "solve_relaxation",
            lambda self, sf, warm_basis=None, probe=False: LPResult(
                status=LPStatus.NUMERICAL
            ),
        )
        # Identity ladder: the breakage survives escalation.
        monkeypatch.setattr(
            BranchAndBoundSolver,
            "_escalate_node",
            lambda self, sf, first, node_id: first,
        )

    def test_solver_raises_structured_error(self, monkeypatch):
        from repro.errors import NumericalInstabilityError
        from repro.mip.solver import BranchAndBoundSolver
        from repro.strategies.cpu_orchestrated import CpuOrchestratedEngine

        self._break_cpu_engine(monkeypatch)
        problem = generate_knapsack(8, seed=1)
        solver = BranchAndBoundSolver(problem, engine=CpuOrchestratedEngine())
        with pytest.raises(NumericalInstabilityError) as exc:
            solver.solve()
        assert exc.value.signal == "numerical"

    def test_api_degrades_to_fallback_strategy(self, monkeypatch):
        from repro.problems.knapsack import knapsack_dp_optimal

        self._break_cpu_engine(monkeypatch)
        problem = generate_knapsack(8, seed=1)
        optimum, _ = knapsack_dp_optimal(problem)
        report = solve(problem, SolveOptions(strategy="cpu_orchestrated"))
        assert report.ok
        assert report.objective == pytest.approx(optimum)
        degradation = report.metrics["degradation"]
        assert degradation["requested"] == "cpu_orchestrated"
        assert degradation["used"] == "direct"


class TestOptionsValidation:
    def test_solve_options(self):
        with pytest.raises(ReproError):
            SolveOptions(deadline=0.0)
        with pytest.raises(ReproError):
            SolveOptions(deadline=-1.0)
        with pytest.raises(ReproError):
            SolveOptions(mip_node_batch=-1)
        with pytest.raises(ReproError):
            SolveOptions(sanitize="fix-it-all")

    def test_solver_options(self):
        with pytest.raises(ReproError):
            SolverOptions(node_limit=0)
        with pytest.raises(ReproError):
            SolverOptions(mip_gap=-0.1)
        with pytest.raises(ReproError):
            SolverOptions(cut_rounds=-1)
        with pytest.raises(ReproError):
            SolverOptions(solution_pool_size=0)
        with pytest.raises(ReproError):
            SolverOptions(checkpoint_every=-1)

    def test_batched_solver_options(self):
        with pytest.raises(ReproError):
            BatchedSolverOptions(batch_size=0)
        with pytest.raises(ReproError):
            BatchedSolverOptions(node_limit=0)
        with pytest.raises(ReproError):
            BatchedSolverOptions(mip_gap=-1e-9)
        with pytest.raises(ReproError):
            BatchedSolverOptions(lp_engine="quantum")

    def test_lp_engine_options(self):
        from repro.lp.interior_point import IPMOptions
        from repro.lp.pdhg import PDHGOptions
        from repro.lp.simplex import SimplexOptions

        with pytest.raises(ReproError):
            SimplexOptions(max_iterations=0)
        with pytest.raises(ReproError):
            IPMOptions(max_iterations=0)
        with pytest.raises(ReproError):
            IPMOptions(tolerance=0.0)
        with pytest.raises(ReproError):
            PDHGOptions(tolerance=-1e-8)
        with pytest.raises(ReproError):
            PDHGOptions(max_iterations=0)
