"""Guard × warm interaction: deadlines expiring mid-warm-re-solve.

Warm starts change how node LPs are solved, not the anytime contract: a
budget that expires inside a warm dual-simplex re-solve must surface as
a structured ``TIME_LIMIT`` (never an exception), and a B&B run stopped
mid-tree with warm starts on must still leave a finite certified dual
bound that dominates the true optimum — exactly as the cold path does.
"""

import numpy as np

from repro.guard.budget import DeadlineBudget, GuardContext, ManualClock, guarding
from repro.lp.result import LPStatus
from repro.lp.simplex import solve_lp
from repro.lp.warm import state_from_result, warm_resolve
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal


class TickingClock:
    """One step per read: deterministic expiry after a fixed number of
    guard polls, independent of host speed."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def midway_guard(polls: int) -> GuardContext:
    return GuardContext(
        budgets=[DeadlineBudget(float(polls), clock=TickingClock(), label="tick")]
    )


def expired_guard() -> GuardContext:
    clock = ManualClock()
    budget = DeadlineBudget(0.5, clock=clock, label="warm-test")
    clock.advance(1.0)
    return GuardContext(budgets=[budget])


def knapsack():
    # Strongly correlated: deep tree, so a 60-poll budget stops midway.
    return generate_knapsack(20, seed=11, correlation="strong")


class TestWarmResolveDeadline:
    def test_expired_budget_surfaces_as_time_limit(self):
        # The budget dies *inside* the warm re-solve: the outcome passes
        # the TIME_LIMIT through for the caller's anytime handling — it
        # is not an audit failure and not a warm-state error.
        lp = generate_knapsack(14, seed=2).relaxation()
        cold = solve_lp(lp)
        assert cold.status is LPStatus.OPTIMAL
        sf = lp.to_standard_form()
        state = state_from_result(sf, cold)
        with guarding(expired_guard()):
            outcome = warm_resolve(sf, state)
        assert outcome is not None
        assert outcome.result.status is LPStatus.TIME_LIMIT
        assert not outcome.audit_failed

    def test_unguarded_warm_resolve_still_finishes(self):
        lp = generate_knapsack(14, seed=2).relaxation()
        cold = solve_lp(lp)
        sf = lp.to_standard_form()
        outcome = warm_resolve(sf, state_from_result(sf, cold))
        assert outcome is not None
        assert outcome.result.status is LPStatus.OPTIMAL


class TestWarmBnbAnytime:
    def test_midtree_stop_leaves_certified_bound(self):
        problem = knapsack()
        with guarding(midway_guard(60)) as ctx:
            res = BranchAndBoundSolver(
                problem, SolverOptions(warm_start=True)
            ).solve()
        assert res.status is MIPStatus.TIME_LIMIT
        assert res.status.anytime
        assert np.isfinite(res.best_bound)
        assert ctx.counters["deadline"] == 1
        if res.x is not None:
            assert problem.is_feasible(res.x)
            assert res.best_bound >= res.objective - 1e-9

    def test_bound_is_sound_against_dp_oracle(self):
        problem = knapsack()
        optimum, _ = knapsack_dp_optimal(problem)
        with guarding(midway_guard(60)):
            partial = BranchAndBoundSolver(
                problem, SolverOptions(warm_start=True)
            ).solve()
        # incumbent <= true optimum <= anytime dual bound
        if np.isfinite(partial.objective):
            assert partial.objective <= optimum + 1e-9
        assert partial.best_bound >= optimum - 1e-9

    def test_warm_path_was_exercised_before_expiry(self):
        # The stop must interrupt genuinely warm work, not a cold run
        # that never reached the reuse path.
        problem = knapsack()
        with guarding(midway_guard(120)):
            partial = BranchAndBoundSolver(
                problem, SolverOptions(warm_start=True)
            ).solve()
        assert partial.status is MIPStatus.TIME_LIMIT
        assert partial.stats.warm_starts > 0

    def test_deterministic_across_runs(self):
        problem = knapsack()

        def run():
            with guarding(midway_guard(60)):
                res = BranchAndBoundSolver(
                    problem, SolverOptions(warm_start=True)
                ).solve()
            return (
                res.status,
                res.objective,
                res.best_bound,
                res.stats.nodes_processed,
                res.stats.warm_starts,
            )

        assert run() == run()

    def test_warm_and_cold_stops_are_both_sound(self):
        problem = knapsack()
        optimum, _ = knapsack_dp_optimal(problem)
        bounds = []
        for warm_start in (True, False):
            with guarding(midway_guard(60)):
                res = BranchAndBoundSolver(
                    problem, SolverOptions(warm_start=warm_start)
                ).solve()
            assert res.status is MIPStatus.TIME_LIMIT
            bounds.append(res.best_bound)
        for bound in bounds:
            assert bound >= optimum - 1e-9
