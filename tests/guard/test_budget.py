"""Deadline budgets, the guard context, and the nesting protocol."""

import pytest

from repro.errors import DeadlineExpired, ReproError
from repro.guard.budget import (
    DeadlineBudget,
    GuardContext,
    ManualClock,
    active,
    deadline_hit,
    guarding,
)


class TestManualClock:
    def test_advances(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(2.5)
        assert clock() == 2.5

    def test_rejects_backwards(self):
        with pytest.raises(ReproError):
            ManualClock().advance(-1.0)


class TestDeadlineBudget:
    def test_rejects_nonpositive_seconds(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ReproError):
                DeadlineBudget(bad)

    def test_elapsed_remaining(self):
        clock = ManualClock()
        budget = DeadlineBudget(10.0, clock=clock)
        clock.advance(3.0)
        assert budget.elapsed() == 3.0
        assert budget.remaining() == 7.0
        clock.advance(100.0)
        assert budget.remaining() == 0.0

    def test_expired_is_sticky(self):
        clock = ManualClock()
        budget = DeadlineBudget(1.0, clock=clock)
        assert not budget.expired()
        clock.advance(1.0)
        assert budget.expired()
        # A fresh wrapper over the same clock would not be expired, but
        # this one stays expired no matter what the clock says.
        budget.start = clock()
        assert budget.expired()

    def test_check_raises_on_expiry(self):
        clock = ManualClock()
        budget = DeadlineBudget(0.5, clock=clock)
        budget.check("setup")  # within budget: no-op
        clock.advance(1.0)
        with pytest.raises(DeadlineExpired):
            budget.check("setup")


class TestGuardContext:
    def expired_budget(self):
        clock = ManualClock()
        budget = DeadlineBudget(0.5, clock=clock, label="test")
        clock.advance(1.0)
        return budget

    def test_unguarded_defaults(self):
        ctx = GuardContext()
        assert not ctx.deadline_hit()
        assert ctx.remaining() == float("inf")
        assert ctx.summary() == {"counters": {}, "events": []}

    def test_deadline_hit_records_event(self):
        ctx = GuardContext(budgets=[self.expired_budget()])
        assert ctx.deadline_hit()
        assert ctx.counters["deadline"] == 1
        # Sticky, and the event is not re-recorded on later polls.
        assert ctx.deadline_hit()
        assert ctx.counters["deadline"] == 1
        assert ctx.summary()["events"][0]["kind"] == "deadline"

    def test_tightest_budget_wins(self):
        clock = ManualClock()
        ctx = GuardContext(
            budgets=[
                DeadlineBudget(10.0, clock=clock),
                DeadlineBudget(2.0, clock=clock),
            ]
        )
        clock.advance(1.0)
        assert ctx.remaining() == 1.0


class TestGuarding:
    def test_install_and_restore(self):
        assert active() is None
        with guarding() as ctx:
            assert active() is ctx
        assert active() is None
        assert not deadline_hit()

    def test_restore_on_exception(self):
        with pytest.raises(RuntimeError):
            with guarding():
                raise RuntimeError("boom")
        assert active() is None

    def test_nested_context_adopts_outer_budgets(self):
        clock = ManualClock()
        outer_budget = DeadlineBudget(1.0, clock=clock, label="outer")
        with guarding(GuardContext(budgets=[outer_budget])):
            with guarding(GuardContext()) as inner:
                assert outer_budget in inner.budgets
                clock.advance(2.0)
                # The outer deadline binds inside the inner context.
                assert inner.deadline_hit()
                assert deadline_hit()

    def test_adopt_does_not_duplicate(self):
        budget = self.make_budget()
        ctx = GuardContext(budgets=[budget])
        ctx.adopt(budget)
        assert ctx.budgets == [budget]

    @staticmethod
    def make_budget():
        return DeadlineBudget(1.0, clock=ManualClock())
