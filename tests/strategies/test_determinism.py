"""Determinism: the same instance through the same engine twice must be
bit-for-bit repeatable — node counts, incumbents, and every meter."""

import dataclasses

import numpy as np
import pytest

from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack
from repro.problems.random_mip import generate_random_mip
from repro.strategies.runner import STRATEGIES, run_strategy


def _stats_dict(stats):
    return dataclasses.asdict(stats)


def _report_metrics(report):
    return {
        "makespan": report.makespan_seconds,
        "h2d": report.h2d_transfers,
        "d2h": report.d2h_transfers,
        "bytes": report.bytes_moved,
        "kernels": report.kernels,
        "mem_peak": report.mem_peak_bytes,
        "energy": report.energy_joules,
    }


class TestStrategyDeterminism:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_identical_reruns(self, strategy):
        problem = generate_random_mip(7, 5, seed=3, density=0.8)
        first = run_strategy(problem, strategy)
        second = run_strategy(problem, strategy)

        assert first.result.status is second.result.status
        assert first.result.objective == second.result.objective
        np.testing.assert_array_equal(first.result.x, second.result.x)
        assert first.result.best_bound == second.result.best_bound
        assert (
            first.result.stats.nodes_processed
            == second.result.stats.nodes_processed
        )
        assert _stats_dict(first.result.stats) == _stats_dict(
            second.result.stats
        )
        assert _report_metrics(first) == _report_metrics(second)

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_identical_reruns_on_knapsack(self, strategy):
        problem = generate_knapsack(12, seed=9)
        metrics = [
            _report_metrics(run_strategy(problem, strategy)) for _ in range(2)
        ]
        assert metrics[0] == metrics[1]


class TestSolverDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "node_selection,branching",
        [
            ("best_first", "pseudocost"),
            ("depth_first", "most_fractional"),
            ("hybrid", "reliability"),
        ],
    )
    def test_bb_solver_repeats_exactly(self, seed, node_selection, branching):
        problem = generate_random_mip(6, 4, seed=seed, density=0.8)
        options = SolverOptions(
            node_selection=node_selection, branching=branching
        )
        runs = [
            BranchAndBoundSolver(problem, options).solve() for _ in range(2)
        ]
        assert runs[0].objective == runs[1].objective
        np.testing.assert_array_equal(runs[0].x, runs[1].x)
        assert _stats_dict(runs[0].stats) == _stats_dict(runs[1].stats)

    def test_incumbent_history_is_identical(self):
        problem = generate_random_mip(7, 5, seed=4, density=0.9)
        options = SolverOptions(cut_rounds=1)
        a = BranchAndBoundSolver(problem, options).solve()
        b = BranchAndBoundSolver(problem, options).solve()
        assert a.stats.incumbent_history == b.stats.incumbent_history
