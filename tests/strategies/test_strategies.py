"""The four execution strategies: correctness, metering, paper claims."""

import numpy as np
import pytest

from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.problems.random_mip import generate_random_mip
from repro.strategies.big_mip import BigMipEngine
from repro.strategies.chooser import PathChoice, choose_path, estimate_paths
from repro.strategies.cpu_orchestrated import CpuOrchestratedEngine
from repro.strategies.gpu_only import GpuOnlyEngine
from repro.strategies.hybrid import HybridEngine
from repro.strategies.runner import STRATEGIES, run_strategy
from repro.errors import ReproError


PROBLEM = generate_knapsack(14, seed=3)
EXPECTED, _ = knapsack_dp_optimal(PROBLEM)


class TestCorrectnessAcrossStrategies:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_same_optimum_every_strategy(self, strategy):
        report = run_strategy(PROBLEM, strategy)
        assert report.result.status is MIPStatus.OPTIMAL
        assert report.result.objective == pytest.approx(EXPECTED)
        assert report.makespan_seconds > 0.0

    def test_unknown_strategy(self):
        with pytest.raises(ReproError):
            run_strategy(PROBLEM, "nope")


class TestCpuOrchestrated:
    def test_matrix_uploaded_once(self):
        engine = CpuOrchestratedEngine()
        solver = BranchAndBoundSolver(PROBLEM, SolverOptions(), engine=engine)
        result = solver.solve()
        assert result.status is MIPStatus.OPTIMAL
        # One matrix upload + one small delta per node.
        h2d = engine.device.metrics.count("transfers.h2d")
        nodes = result.stats.nodes_processed
        assert h2d == 1 + nodes
        # No matrix downloads without cuts.
        assert engine.device.metrics.count("transfers.d2h") == 0

    def test_cut_rounds_force_matrix_roundtrip(self):
        """§5.2: CPU cut generation costs a device→host matrix copy."""
        engine = CpuOrchestratedEngine(cut_generation="cpu")
        solver = BranchAndBoundSolver(
            PROBLEM, SolverOptions(cut_rounds=2), engine=engine
        )
        result = solver.solve()
        assert result.status is MIPStatus.OPTIMAL
        assert result.stats.cut_rounds > 0
        assert engine.device.metrics.count("transfers.d2h") >= result.stats.cut_rounds

    def test_gpu_resident_cuts_skip_roundtrip(self):
        engine = CpuOrchestratedEngine(cut_generation="gpu")
        solver = BranchAndBoundSolver(
            PROBLEM, SolverOptions(cut_rounds=2), engine=engine
        )
        result = solver.solve()
        assert result.stats.cut_rounds > 0
        assert engine.device.metrics.count("transfers.d2h") == 0


class TestGpuOnly:
    def test_charges_tree_management(self):
        engine = GpuOnlyEngine()
        BranchAndBoundSolver(PROBLEM, SolverOptions(), engine=engine).solve()
        # Tree ops land on the device as SIMD-hostile kernels.
        assert engine.device.metrics.count("kernels.spmv") > 0

    def test_slower_than_cpu_orchestrated(self):
        """§3: strategy 1 loses to strategy 2 on like-for-like searches."""
        gpu_only = run_strategy(PROBLEM, "gpu_only")
        orchestrated = run_strategy(PROBLEM, "cpu_orchestrated")
        assert gpu_only.makespan_seconds > orchestrated.makespan_seconds

    def test_node_store_consumes_device_memory(self):
        engine = GpuOnlyEngine()
        BranchAndBoundSolver(PROBLEM, SolverOptions(), engine=engine).solve()
        orchestrated = CpuOrchestratedEngine()
        BranchAndBoundSolver(PROBLEM, SolverOptions(), engine=orchestrated).solve()
        assert engine.device.memory.peak > orchestrated.device.memory.peak


class TestHybrid:
    def test_path_matches_chooser(self):
        engine = HybridEngine()
        p = generate_random_mip(16, 12, seed=0, density=1.0, bound=3.0)
        sf = p.relaxation().to_standard_form()
        density = float(np.count_nonzero(sf.a)) / sf.a.size
        BranchAndBoundSolver(p, SolverOptions(), engine=engine).solve()
        assert engine.path is choose_path(sf.m, sf.n, density)

    def test_sparse_problem_routes_to_cpu(self):
        engine = HybridEngine()
        p = generate_random_mip(60, 40, seed=1, density=0.03, bound=2.0)
        BranchAndBoundSolver(
            p, SolverOptions(node_limit=3), engine=engine
        ).solve()
        assert engine.path is PathChoice.SPARSE_CPU

    def test_cut_rounds_do_not_move_matrix(self):
        engine = HybridEngine()
        solver = BranchAndBoundSolver(
            PROBLEM, SolverOptions(cut_rounds=2), engine=engine
        )
        result = solver.solve()
        assert result.stats.cut_rounds > 0
        assert engine.device.metrics.count("transfers.d2h") == 0


class TestBigMip:
    def test_correct_but_communication_bound_on_small_problems(self):
        engine = BigMipEngine(num_devices=4)
        solver = BranchAndBoundSolver(PROBLEM, SolverOptions(), engine=engine)
        result = solver.solve()
        assert result.objective == pytest.approx(EXPECTED)
        single = run_strategy(PROBLEM, "cpu_orchestrated")
        # §3.4: for matrices that fit one device, sharding only adds cost.
        assert engine.elapsed_seconds > single.makespan_seconds
        assert engine.devices[0].metrics.count("comm.allreduce") > 0

    def test_needs_at_least_one_device(self):
        from repro.errors import DeviceError

        with pytest.raises(DeviceError):
            BigMipEngine(num_devices=0)

    def test_shard_memory_split(self):
        engine = BigMipEngine(num_devices=4)
        sf = PROBLEM.relaxation().to_standard_form()
        engine.begin_search(PROBLEM, sf)
        expected_shard = max(8, sf.a.size * 8 // 4)
        for device in engine.devices:
            assert device.memory.used == expected_shard


class TestChooser:
    def test_dense_large_prefers_gpu(self):
        # GPU dense linear algebra wins once the LP is big enough to
        # fill the device (the paper's large-MIPLIB regime).
        assert choose_path(4096, 8192, 1.0) is PathChoice.DENSE_GPU

    def test_dense_small_prefers_cpu(self):
        # Small LPs are latency-bound: the host wins (why §5.5 batches).
        assert choose_path(256, 512, 1.0) is PathChoice.DENSE_CPU

    def test_very_sparse_prefers_cpu(self):
        assert choose_path(512, 1024, 0.005) is PathChoice.SPARSE_CPU

    def test_estimates_ordered_sensibly(self):
        est = estimate_paths(256, 512, 1.0)
        # At full density the "sparse" kernels price above dense ones.
        assert est.dense_gpu_seconds < est.sparse_gpu_seconds
        assert est.dense_cpu_seconds < est.sparse_cpu_seconds

    def test_density_crossover_exists(self):
        """At large size, density sweeps from sparse-CPU to dense-GPU."""
        choices = [choose_path(4096, 8192, d) for d in (0.005, 0.05, 1.0)]
        assert choices[0] is PathChoice.SPARSE_CPU
        assert choices[-1] is PathChoice.DENSE_GPU
