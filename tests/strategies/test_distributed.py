"""Distributed (supervisor–worker) branch-and-bound tests."""

import numpy as np
import pytest

from repro.mip.problem import MIPProblem
from repro.mip.snapshot import SearchSnapshot, resume_from_snapshot
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.strategies.distributed import solve_distributed


PROBLEM = generate_knapsack(16, seed=4)
EXPECTED, _ = knapsack_dp_optimal(PROBLEM)


class TestDistributedCorrectness:
    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    def test_optimum_independent_of_worker_count(self, workers):
        res = solve_distributed(PROBLEM, num_workers=workers)
        assert res.objective == pytest.approx(EXPECTED)

    def test_same_nodes_regardless_of_balancing_mode(self):
        dynamic = solve_distributed(PROBLEM, num_workers=3)
        assert dynamic.objective == pytest.approx(EXPECTED)
        assert dynamic.nodes_evaluated > 0

    def test_deterministic(self):
        a = solve_distributed(PROBLEM, num_workers=3)
        b = solve_distributed(PROBLEM, num_workers=3)
        assert a.objective == b.objective
        assert a.nodes_evaluated == b.nodes_evaluated
        assert a.makespan_seconds == b.makespan_seconds


class TestScalingBehaviour:
    def test_parallel_speedup_over_sequential(self):
        hard = generate_knapsack(24, seed=11, correlation="strong")
        seq = solve_distributed(hard, num_workers=0)
        par = solve_distributed(hard, num_workers=8)
        assert par.objective == pytest.approx(seq.objective)
        assert par.makespan_seconds < seq.makespan_seconds
        speedup = seq.makespan_seconds / par.makespan_seconds
        assert speedup > 1.5

    def test_work_distribution_tracked(self):
        res = solve_distributed(PROBLEM, num_workers=4)
        assert len(res.per_worker) == 4
        assert sum(res.per_worker) <= res.nodes_evaluated  # ramp-up on rank 0

    def test_messages_counted(self):
        res = solve_distributed(PROBLEM, num_workers=2)
        assert res.messages > 0
        assert res.comm_bytes > 0


class TestDistributedSnapshots:
    def test_checkpoints_capture_open_boxes(self):
        res = solve_distributed(PROBLEM, num_workers=3, checkpoint_every=5)
        assert res.snapshots, "expected at least one checkpoint"

    def test_restart_from_distributed_checkpoint(self):
        """§2.1: the distributed snapshot also preserves the optimum."""
        res = solve_distributed(PROBLEM, num_workers=3, checkpoint_every=5)
        snap_raw = res.snapshots[0]
        leaves = [(lb.copy(), ub.copy()) for (lb, ub, _depth) in snap_raw.tasks]
        snapshot = SearchSnapshot(
            leaves=leaves,
            incumbent_objective=(
                snap_raw.incumbent if snap_raw.incumbent is not None else -np.inf
            ),
        )
        resumed = resume_from_snapshot(PROBLEM, snapshot)
        best = resumed.objective
        if snap_raw.incumbent is not None:
            best = max(best, snap_raw.incumbent)
        assert best == pytest.approx(EXPECTED)
