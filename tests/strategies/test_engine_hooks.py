"""DeviceCostHook and MeteredEngine accounting tests."""

import numpy as np
import pytest

from repro.device.gpu import Device
from repro.device.spec import CPU_HOST, V100
from repro.lp.problem import LinearProgram
from repro.lp.simplex import solve_lp
from repro.strategies.engine import DeviceCostHook, MeteredEngine
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack


def small_lp(seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((6, 9))
    return LinearProgram(
        c=rng.standard_normal(9),
        a_ub=a,
        b_ub=a @ rng.random(9) + 1.0,
        ub=np.full(9, 10.0),
    )


class TestDeviceCostHook:
    def test_dense_mode_charges_dense_kernels(self):
        device = Device(V100)
        solve_lp(small_lp(), hook=DeviceCostHook(device, mode="dense"))
        assert device.kernel_count("getrf") > 0
        assert device.kernel_count("trsv") > 0
        assert device.kernel_count("gemv") > 0
        assert device.kernel_count("sparse_getrf") == 0

    def test_sparse_mode_charges_sparse_kernels(self):
        device = Device(V100)
        solve_lp(
            small_lp(), hook=DeviceCostHook(device, mode="sparse", density=0.3)
        )
        assert device.kernel_count("sparse_getrf") > 0
        assert device.kernel_count("spmv") > 0
        assert device.kernel_count("getrf") == 0

    def test_sparse_mode_denser_costs_more(self):
        thin = Device(V100)
        solve_lp(small_lp(1), hook=DeviceCostHook(thin, mode="sparse", density=0.05))
        thick = Device(V100)
        solve_lp(small_lp(1), hook=DeviceCostHook(thick, mode="sparse", density=1.0))
        assert thick.clock.now > thin.clock.now

    def test_same_lp_same_kernel_stream(self):
        """Determinism: two identical solves charge identical time."""
        a, b = Device(V100), Device(V100)
        solve_lp(small_lp(2), hook=DeviceCostHook(a, mode="dense"))
        solve_lp(small_lp(2), hook=DeviceCostHook(b, mode="dense"))
        assert a.clock.now == b.clock.now
        assert a.kernel_count() == b.kernel_count()

    def test_eta_chain_charged_after_updates(self):
        device = Device(V100)
        solve_lp(small_lp(3), hook=DeviceCostHook(device, mode="dense"))
        assert device.kernel_count("eta_chain") > 0

    def test_explicit_levels_override(self):
        fast = Device(V100)
        slow = Device(V100)
        solve_lp(
            small_lp(4),
            hook=DeviceCostHook(fast, mode="sparse", density=0.3, num_levels=2),
        )
        solve_lp(
            small_lp(4),
            hook=DeviceCostHook(slow, mode="sparse", density=0.3, num_levels=64),
        )
        assert slow.clock.now > fast.clock.now


class TestMeteredEngine:
    def test_probe_option_limits_iterations(self):
        engine = MeteredEngine(V100)
        problem = generate_knapsack(10, seed=0)
        sf = problem.relaxation().to_standard_form()
        engine.begin_search(problem, sf)
        res = engine.solve_relaxation(sf, probe=True)
        assert res.iterations <= 200

    def test_elapsed_seconds_monotone_across_nodes(self):
        engine = MeteredEngine(V100)
        problem = generate_knapsack(12, seed=1)
        solver = BranchAndBoundSolver(problem, SolverOptions(), engine=engine)
        result = solver.solve()
        assert result.ok
        assert engine.elapsed_seconds > 0

    def test_cpu_spec_is_free_of_transfers(self):
        engine = MeteredEngine(CPU_HOST)
        problem = generate_knapsack(10, seed=2)
        BranchAndBoundSolver(problem, SolverOptions(), engine=engine).solve()
        assert engine.device.metrics.count("transfers.h2d") == 0

    def test_report_snapshot(self):
        engine = MeteredEngine(V100)
        problem = generate_knapsack(10, seed=3)
        result = BranchAndBoundSolver(problem, SolverOptions(), engine=engine).solve()
        report = engine.report(result, strategy="test")
        assert report.strategy == "test"
        assert report.makespan_seconds == pytest.approx(engine.elapsed_seconds)
        assert report.kernels == engine.device.kernel_count()
