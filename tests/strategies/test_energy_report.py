"""Energy accounting in strategy reports (§2.2)."""

import pytest

from repro.problems.knapsack import generate_knapsack
from repro.strategies.runner import STRATEGIES, run_strategy

PROBLEM = generate_knapsack(12, seed=9)


class TestEnergyInReports:
    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_energy_positive(self, strategy):
        report = run_strategy(PROBLEM, strategy)
        assert report.energy_joules > 0.0

    def test_big_mip_burns_most_energy(self):
        """Four lockstep shards burn ~4x the kernel energy of one GPU."""
        single = run_strategy(PROBLEM, "cpu_orchestrated")
        sharded = run_strategy(PROBLEM, "big_mip_4")
        assert sharded.energy_joules > 2 * single.energy_joules

    def test_hybrid_energy_counts_both_devices(self):
        from repro.mip.solver import BranchAndBoundSolver, SolverOptions
        from repro.strategies.hybrid import HybridEngine

        engine = HybridEngine()
        result = BranchAndBoundSolver(PROBLEM, SolverOptions(), engine=engine).solve()
        report = engine.report(result)
        expected = engine.device.energy_joules + engine.cpu.energy_joules
        assert report.energy_joules == pytest.approx(expected)
