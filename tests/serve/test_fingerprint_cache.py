"""Fingerprints and the LRU result cache."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.problems.knapsack import generate_knapsack
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.request import Outcome, fingerprint


def entry(obj=1.0, ready=0.0):
    return CacheEntry(
        outcome=Outcome.OK,
        solver_status="optimal",
        objective=obj,
        x=None,
        ready_time=ready,
    )


class TestFingerprint:
    def test_identical_data_same_hash(self):
        a = generate_knapsack(10, seed=3)
        b = generate_knapsack(10, seed=3)
        assert fingerprint(a) == fingerprint(b)

    def test_name_is_excluded(self):
        a = generate_knapsack(10, seed=3)
        b = generate_knapsack(10, seed=3)
        b.name = "renamed"
        assert fingerprint(a) == fingerprint(b)

    def test_data_change_changes_hash(self):
        a = generate_knapsack(10, seed=3)
        b = generate_knapsack(10, seed=4)
        assert fingerprint(a) != fingerprint(b)

    def test_lp_and_mip_differ(self):
        mip = generate_knapsack(10, seed=3)
        lp = mip.relaxation()
        assert fingerprint(mip) != fingerprint(lp)

    def test_relaxations_of_same_mip_match(self):
        mip = generate_knapsack(10, seed=3)
        assert fingerprint(mip.relaxation()) == fingerprint(mip.relaxation())


class TestResultCache:
    def test_hit_miss_accounting(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", entry())
        assert cache.get("a") is not None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_contains_does_not_count(self):
        cache = ResultCache(capacity=4)
        cache.put("a", entry())
        assert "a" in cache and "b" not in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", entry(1.0))
        cache.put("b", entry(2.0))
        cache.get("a")          # refresh "a": "b" is now LRU
        cache.put("c", entry(3.0))
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_zero_capacity_stores_nothing(self):
        cache = ResultCache(capacity=0)
        cache.put("a", entry())
        assert len(cache) == 0 and cache.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ServiceError):
            ResultCache(capacity=-1)
