"""Serve's parametric near-duplicate path: range hits, warm re-solves,
audit fall-through, and the structural fingerprint that gates it all.

Every parametric answer must match a fresh cold solve of the *perturbed*
problem — the near-duplicate detector may only change latency, never the
answer — and a request the state cannot certify falls through to the
normal dispatch path (a miss, not an error).
"""

import numpy as np
import pytest

from repro import solve_lp
from repro.lp.problem import LinearProgram
from repro.lp.result import LPStatus
from repro.serve import (
    BatchingPolicy,
    ParametricCache,
    SolveService,
    structure_fingerprint,
)


def base_lp(seed=5, n=8, m=6):
    rng = np.random.default_rng(seed)
    a = np.abs(rng.normal(size=(m, n))) + 0.1
    return LinearProgram(
        c=rng.normal(size=n) + 1.0,
        a_ub=a,
        b_ub=np.abs(rng.normal(size=m)) * 5 + 2,
        lb=np.zeros(n),
        ub=np.full(n, np.inf),
    )


def perturbed(lp, scale):
    return LinearProgram(
        c=lp.c, a_ub=lp.a_ub, b_ub=np.asarray(lp.b_ub) * scale,
        lb=lp.lb, ub=lp.ub,
    )


def make_service(**kwargs):
    return SolveService(
        policy=BatchingPolicy(max_batch_size=1, max_wait=0.0), **kwargs
    )


class TestStructureFingerprint:
    def test_rhs_and_objective_moves_share_structure(self):
        lp = base_lp()
        assert structure_fingerprint(lp) == structure_fingerprint(
            perturbed(lp, 1.3)
        )
        moved_c = LinearProgram(
            c=np.asarray(lp.c) + 1.0, a_ub=lp.a_ub, b_ub=lp.b_ub,
            lb=lp.lb, ub=lp.ub,
        )
        assert structure_fingerprint(lp) == structure_fingerprint(moved_c)

    def test_coefficient_change_differs(self):
        lp = base_lp()
        a2 = np.asarray(lp.a_ub).copy()
        a2[0, 0] += 0.5
        other = LinearProgram(c=lp.c, a_ub=a2, b_ub=lp.b_ub, lb=lp.lb, ub=lp.ub)
        assert structure_fingerprint(lp) != structure_fingerprint(other)

    def test_bound_finiteness_pattern_differs_but_values_do_not(self):
        lp = base_lp()
        finite_ub = LinearProgram(
            c=lp.c, a_ub=lp.a_ub, b_ub=lp.b_ub, lb=lp.lb,
            ub=np.full(len(lp.c), 10.0),
        )
        # Flipping inf→finite changes the standard-form layout: new key.
        assert structure_fingerprint(lp) != structure_fingerprint(finite_ub)
        # But moving a finite bound's *value* does not.
        moved = LinearProgram(
            c=lp.c, a_ub=lp.a_ub, b_ub=lp.b_ub, lb=lp.lb,
            ub=np.full(len(lp.c), 12.0),
        )
        assert structure_fingerprint(finite_ub) == structure_fingerprint(moved)


class TestServeParametricPath:
    def _run(self, scales, service=None):
        lp = base_lp()
        service = service or make_service()
        problems = [lp] + [perturbed(lp, s) for s in scales]
        for i, problem in enumerate(problems):
            service.submit(problem, at=float(i))
            service.drain()
        responses = service.close()
        return service, problems, responses

    def test_small_rhs_move_is_a_range_hit(self):
        service, problems, responses = self._run([1.001])
        assert responses[0].warm == ""
        assert responses[1].warm == "range"
        assert service.parametric.range_hits == 1
        reference = solve_lp(problems[1])
        assert responses[1].objective == pytest.approx(reference.objective)

    def test_large_rhs_move_is_a_warm_resolve(self):
        service, problems, responses = self._run([0.5])
        assert responses[1].warm == "resolve"
        assert service.parametric.warm_hits == 1
        reference = solve_lp(problems[1])
        assert reference.status is LPStatus.OPTIMAL
        assert responses[1].objective == pytest.approx(reference.objective)

    def test_metrics_and_stats_expose_hits(self):
        service, _, _ = self._run([1.001, 0.5])
        counters = service.metrics.counters
        assert counters.get("serve.range_hit", 0) == 1
        assert counters.get("serve.warm_hit", 0) == 1
        assert counters.get("serve.parametric.seeded", 0) >= 1
        block = service.stats()["derived"]["parametric"]
        assert block["range_hits"] == 1 and block["warm_hits"] == 1
        assert block["audit_failures"] == 0

    def test_parametric_answer_is_causal(self):
        # The answer reuses a completed solve: it can never finish
        # before the solve that seeded it did.
        service, _, responses = self._run([1.001])
        assert responses[1].completion_time >= responses[0].completion_time
        # ...and it is far cheaper than the cold path that seeded it.
        assert responses[1].latency < responses[0].latency

    def test_exact_duplicate_prefers_result_cache(self):
        lp = base_lp()
        service = make_service()
        service.submit(lp, at=0.0)
        service.drain()
        service.submit(lp, at=1.0)
        responses = service.close()
        assert responses[1].cached and responses[1].warm == ""

    def test_warm_resolve_reseeds_for_the_next_duplicate(self):
        # After a warm re-solve the entry tracks the stream: a small
        # move around the *new* rhs is in-range again.
        service, problems, responses = self._run([0.5, 0.5005])
        assert responses[1].warm == "resolve"
        assert responses[2].warm == "range"
        reference = solve_lp(problems[2])
        assert responses[2].objective == pytest.approx(reference.objective)

    def test_different_structure_misses(self):
        lp = base_lp()
        other = base_lp(seed=6)
        service = make_service()
        service.submit(lp, at=0.0)
        service.drain()
        service.submit(other, at=1.0)
        responses = service.close()
        assert responses[1].warm == ""
        assert service.parametric.misses >= 1

    def test_deadline_requests_bypass_parametric(self):
        lp = base_lp()
        service = make_service()
        service.submit(lp, at=0.0)
        service.drain()
        service.submit(perturbed(lp, 1.001), at=1.0, solve_deadline=10.0)
        responses = service.close()
        assert responses[1].warm == ""
        assert service.parametric.range_hits == 0

    def test_capacity_zero_disables_the_path(self):
        service, problems, responses = self._run(
            [1.001], service=make_service(parametric_capacity=0)
        )
        assert all(r.warm == "" for r in responses)
        reference = solve_lp(problems[1])
        assert responses[1].objective == pytest.approx(reference.objective)

    def test_audit_failure_falls_through_to_cold(self, monkeypatch):
        lp = base_lp()
        service = make_service()
        service.submit(lp, at=0.0)
        service.drain()
        # Force the certification step to reject every parametric
        # answer: the request must fall through to a correct cold solve.
        monkeypatch.setattr(
            type(service.parametric), "_certified", lambda self, p, r: False
        )
        service.submit(perturbed(lp, 1.001), at=1.0)
        responses = service.close()
        assert responses[1].warm == ""
        assert service.parametric.audit_failures >= 1
        reference = solve_lp(perturbed(lp, 1.001))
        assert responses[1].objective == pytest.approx(reference.objective)

    def test_near_duplicate_result_lands_in_exact_cache(self):
        # A parametric answer backfills the plain fingerprint cache, so
        # re-submitting the same perturbation is a plain cache hit.
        lp = base_lp()
        service = make_service()
        service.submit(lp, at=0.0)
        service.drain()
        service.submit(perturbed(lp, 1.001), at=1.0)
        service.drain()
        service.submit(perturbed(lp, 1.001), at=2.0)
        responses = service.close()
        assert responses[1].warm == "range"
        assert responses[2].cached


class TestParametricCacheUnit:
    def test_seed_refuses_unusable_results(self):
        cache = ParametricCache(capacity=4)
        lp = base_lp()
        res = solve_lp(lp)
        assert res.status is LPStatus.OPTIMAL
        broken = solve_lp(lp)
        broken.basis = None
        assert not cache.seed(lp, broken, ready_time=0.0)
        assert cache.seed(lp, res, ready_time=0.0)

    def test_lru_bound(self):
        cache = ParametricCache(capacity=2)
        for seed in range(5):
            lp = base_lp(seed=seed)
            res = solve_lp(lp)
            if res.status is LPStatus.OPTIMAL:
                cache.seed(lp, res, ready_time=0.0)
        assert len(cache) <= 2
