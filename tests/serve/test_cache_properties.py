"""Property-based tests (hypothesis) for the serve-layer cache:
fingerprint stability, coalescing/cache coherence, and the LRU bound."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mip.problem import MIPProblem
from repro.serve import BatchingPolicy, SolveService
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.workload import lp_pool
from repro.serve.request import Outcome, fingerprint

settings.register_profile("ci", deadline=None, max_examples=30)
settings.load_profile("ci")


finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def mip_problems(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    c = draw(
        st.lists(finite_floats, min_size=n, max_size=n).map(np.asarray)
    )
    integer = draw(
        st.lists(st.booleans(), min_size=n, max_size=n).map(
            lambda bits: np.asarray(bits, dtype=bool)
        )
    )
    row = draw(st.lists(finite_floats, min_size=n, max_size=n).map(np.asarray))
    rhs = draw(finite_floats)
    return dict(
        c=c,
        integer=integer,
        a_ub=row.reshape(1, n),
        b_ub=np.array([abs(rhs) + 1.0]),
        lb=np.zeros(n),
        ub=np.full(n, 10.0),
    )


class TestFingerprintProperties:
    @given(data=mip_problems())
    def test_equal_problems_one_fingerprint(self, data):
        # Two independently constructed problems with identical data
        # (including fresh array copies) must collapse to one fingerprint,
        # regardless of their names.
        a = MIPProblem(name="left", **{k: np.copy(v) for k, v in data.items()})
        b = MIPProblem(name="right", **{k: np.copy(v) for k, v in data.items()})
        assert fingerprint(a) == fingerprint(b)

    @given(data=mip_problems(), delta=st.floats(min_value=0.5, max_value=5.0))
    def test_changed_objective_changes_fingerprint(self, data, delta):
        a = MIPProblem(**{k: np.copy(v) for k, v in data.items()})
        changed = {k: np.copy(v) for k, v in data.items()}
        changed["c"] = changed["c"] + delta
        b = MIPProblem(**changed)
        assert fingerprint(a) != fingerprint(b)


class TestCoalescingProperties:
    @given(
        duplicates=st.integers(min_value=1, max_value=5),
        batch_size=st.integers(min_value=1, max_value=8),
    )
    def test_duplicates_all_receive_the_primary_result(
        self, duplicates, batch_size
    ):
        problem = lp_pool(1, seed=4)[0]
        service = SolveService(
            policy=BatchingPolicy(max_batch_size=batch_size)
        )
        for i in range(duplicates + 1):
            service.submit(problem, at=i * 1e-6)
        responses = service.close()
        assert len(responses) == duplicates + 1
        primary = responses[0]
        assert primary.ok and not primary.cached and not primary.coalesced
        for follower in responses[1:]:
            assert follower.ok
            assert follower.cached or follower.coalesced
            assert follower.objective == primary.objective
            assert follower.completion_time >= primary.completion_time
        # The device solved the problem exactly once.
        assert service.metrics.count("serve.batch_members") == 1

    @given(
        distinct=st.integers(min_value=1, max_value=4),
        repeats=st.integers(min_value=1, max_value=3),
    )
    def test_distinct_problems_never_share_results(self, distinct, repeats):
        pool = lp_pool(distinct, seed=11)
        service = SolveService(policy=BatchingPolicy(max_batch_size=16))
        t = 0.0
        for _ in range(repeats):
            for problem in pool:
                service.submit(problem, at=t)
                t += 1e-6
        responses = service.close()
        assert len(responses) == distinct * repeats
        by_problem = {}
        for i, response in enumerate(responses):
            by_problem.setdefault(i % distinct, set()).add(response.objective)
        for objectives in by_problem.values():
            assert len(objectives) == 1  # repeats agree with their primary
        assert service.metrics.count("serve.batch_members") == distinct


def _entry(obj):
    return CacheEntry(
        outcome=Outcome.OK,
        solver_status="optimal",
        objective=obj,
        x=None,
        ready_time=0.0,
    )


class TestLRUProperties:
    @given(
        capacity=st.integers(min_value=0, max_value=8),
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=12)),
            max_size=60,
        ),
    )
    def test_size_never_exceeds_capacity(self, capacity, ops):
        cache = ResultCache(capacity=capacity)
        inserted = set()
        for is_put, key_id in ops:
            key = f"k{key_id}"
            if is_put:
                cache.put(key, _entry(float(key_id)))
                inserted.add(key)
            else:
                entry = cache.get(key)
                if entry is not None:
                    assert entry.objective == float(key_id)
            assert len(cache) <= capacity
        assert len(cache) <= min(capacity, len(inserted) or 0)
        assert cache.hits + cache.misses == sum(1 for p, _ in ops if not p)

    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=20), min_size=1, max_size=40
        )
    )
    def test_most_recent_keys_survive(self, keys):
        capacity = 4
        cache = ResultCache(capacity=capacity)
        for k in keys:
            cache.put(f"k{k}", _entry(float(k)))
        # Deduplicate by most-recent insertion, last `capacity` survive.
        recent = list(dict.fromkeys(f"k{k}" for k in reversed(keys)))[:capacity]
        for key in recent:
            assert key in cache
        assert len(cache) == min(capacity, len(set(keys)))
