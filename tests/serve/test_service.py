"""End-to-end service semantics: caching, batching triggers, admission
control, drain-on-shutdown, correctness, and determinism."""

import numpy as np
import pytest

from repro import solve_lp
from repro.errors import (
    RequestTimeout,
    ServiceClosed,
    ServiceError,
    ServiceSaturated,
)
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.serve import (
    BatchingPolicy,
    Outcome,
    SolveService,
    lp_pool,
    mip_pool,
    replay,
    synthetic_stream,
)


def make_service(**kwargs):
    policy_kwargs = {
        k: kwargs.pop(k)
        for k in ("max_batch_size", "max_wait", "max_queue_depth")
        if k in kwargs
    }
    return SolveService(policy=BatchingPolicy(**policy_kwargs), **kwargs)


class TestCorrectness:
    def test_lp_batch_matches_direct_solve(self):
        pool = lp_pool(6, seed=11)
        service = make_service(max_batch_size=8)
        for i, problem in enumerate(pool):
            service.submit(problem, at=i * 1e-6)
        responses = service.close()
        assert len(responses) == 6
        for problem, response in zip(pool, responses):
            assert response.ok
            reference = solve_lp(problem)
            assert response.objective == pytest.approx(reference.objective)
            assert response.batch_size == 6

    def test_mip_batch_matches_dp_oracle(self):
        pool = mip_pool(3, num_items=8, seed=21)
        service = make_service(max_batch_size=4)
        for i, problem in enumerate(pool):
            service.submit(problem, at=i * 1e-6)
        responses = service.close()
        for problem, response in zip(pool, responses):
            assert response.ok and response.solver_status == "optimal"
            expected, _ = knapsack_dp_optimal(problem)
            assert response.objective == pytest.approx(expected)


class TestCacheAndDedup:
    def test_duplicate_after_completion_is_cache_hit(self):
        problem = lp_pool(1, seed=4)[0]
        service = make_service(max_batch_size=1)
        service.submit(problem, at=0.0)      # dispatched immediately
        service.submit(problem, at=1e-3)     # identical → cache
        responses = service.close()
        first, second = responses
        assert not first.cached and second.cached
        assert second.objective == pytest.approx(first.objective)
        # The device ran exactly one batch.
        assert service.metrics.count("serve.batches") == 1
        assert service.cache.hits == 1

    def test_duplicate_while_queued_is_coalesced(self):
        problem = lp_pool(1, seed=4)[0]
        service = make_service(max_batch_size=8)
        service.submit(problem, at=0.0)
        service.submit(problem, at=1e-6)     # primary still queued
        responses = service.close()
        first, second = responses
        assert second.coalesced and not second.cached
        assert second.objective == pytest.approx(first.objective)
        assert service.metrics.count("serve.batch_members") == 1
        assert service.metrics.count("serve.coalesced") == 1

    def test_cache_hit_waits_for_result_readiness(self):
        # A duplicate arriving before its twin's solve finishes must not
        # receive the answer earlier than the device produced it.
        problem = lp_pool(1, seed=4)[0]
        service = make_service(max_batch_size=1)
        service.submit(problem, at=0.0)
        ready = service.result(0).completion_time
        assert ready > 0.0
        service.submit(problem, at=ready / 10)
        duplicate = service.result(1)
        assert duplicate.cached
        assert duplicate.completion_time >= ready


class TestBatchingTriggers:
    def test_size_trigger_dispatches_full_batch(self):
        pool = lp_pool(4, seed=6)
        service = make_service(max_batch_size=4, max_wait=10.0)
        for i, problem in enumerate(pool):
            service.submit(problem, at=i * 1e-6)
        # Flushed on the 4th submit, before any drain.
        response = service.result(3)
        assert response is not None and response.batch_size == 4
        assert service.metrics.count("serve.flush.size") == 1

    def test_deadline_trigger_flushes_partial_batch(self):
        pool = lp_pool(3, seed=6)
        mip = mip_pool(1, num_items=8, seed=6)[0]
        service = make_service(max_batch_size=8, max_wait=1e-3)
        service.submit(pool[0], at=0.0)
        service.submit(pool[1], at=1e-5)
        # A later arrival in a *different* bucket pumps simulated time
        # past the LP bucket's deadline.
        service.submit(mip, at=5e-3)
        response = service.result(0)
        assert response is not None
        assert response.batch_size == 2
        assert response.dispatch_time == pytest.approx(1e-3)
        assert service.metrics.count("serve.flush.deadline") == 1

    def test_queue_wait_bounded_by_max_wait(self):
        pool = lp_pool(2, seed=8)
        mip = mip_pool(1, num_items=8, seed=8)[0]
        service = make_service(max_batch_size=64, max_wait=2e-3)
        service.submit(pool[0], at=0.0)
        service.submit(pool[1], at=1e-4)
        service.submit(mip, at=1.0)
        for rid in (0, 1):
            assert service.result(rid).queue_wait <= 2e-3 + 1e-12


class TestAdmissionControl:
    def test_saturation_raises_typed_error(self):
        pool = lp_pool(5, seed=9)
        service = make_service(max_batch_size=8, max_wait=10.0, max_queue_depth=4)
        for problem in pool[:4]:
            service.submit(problem, at=0.0)
        with pytest.raises(ServiceSaturated):
            service.submit(pool[4], at=0.0)
        assert service.metrics.count("serve.rejected") == 1
        # The queued work still completes on drain.
        responses = service.drain()
        assert len(responses) == 4 and all(r.ok for r in responses)

    def test_timeout_produces_typed_outcome(self):
        pool = lp_pool(1, seed=10)
        mip = mip_pool(1, num_items=8, seed=10)[0]
        service = make_service(max_batch_size=8, max_wait=1.0)
        service.submit(pool[0], at=0.0, timeout=1e-4)
        service.submit(mip, at=1e-2)  # pumps time past the timeout
        response = service.result(0)
        assert response.outcome is Outcome.TIMEOUT
        assert response.completion_time == pytest.approx(1e-4)
        with pytest.raises(RequestTimeout):
            response.raise_for_outcome()
        assert service.metrics.count("serve.timeouts") == 1

    def test_timeout_fires_before_deadline_flush_on_tie(self):
        pool = lp_pool(1, seed=10)
        mip = mip_pool(1, num_items=8, seed=10)[0]
        # timeout == max_wait: the request gives up, the flush finds an
        # empty bucket.
        service = make_service(max_batch_size=8, max_wait=1e-3)
        service.submit(pool[0], at=0.0, timeout=1e-3)
        service.submit(mip, at=1e-2)
        assert service.result(0).outcome is Outcome.TIMEOUT

    def test_arrivals_must_be_time_ordered(self):
        pool = lp_pool(1, seed=10)
        service = make_service()
        service.submit(pool[0], at=1.0)
        with pytest.raises(ServiceError):
            service.submit(pool[0], at=0.5)


class TestShutdown:
    def test_drain_flushes_partial_batches(self):
        pool = lp_pool(3, seed=12)
        service = make_service(max_batch_size=64, max_wait=10.0)
        for i, problem in enumerate(pool):
            service.submit(problem, at=i * 1e-6)
        assert service.queue.depth == 3
        responses = service.drain()
        assert len(responses) == 3 and all(r.ok for r in responses)
        assert service.queue.depth == 0
        assert service.metrics.count("serve.flush.drain") >= 1

    def test_close_then_submit_raises(self):
        pool = lp_pool(2, seed=12)
        service = make_service(max_batch_size=64)
        service.submit(pool[0], at=0.0)
        responses = service.close()
        assert len(responses) == 1 and responses[0].ok
        with pytest.raises(ServiceClosed):
            service.submit(pool[1], at=1.0)

    def test_close_is_idempotent(self):
        pool = lp_pool(1, seed=12)
        service = make_service(max_batch_size=64)
        service.submit(pool[0], at=0.0)
        first = service.close()
        second = service.close()
        assert [r.request_id for r in first] == [r.request_id for r in second]


class TestDeterminism:
    def test_same_stream_same_responses_and_times(self):
        pool = lp_pool(6, seed=2) + mip_pool(2, num_items=8, seed=2)
        stream = synthetic_stream(
            pool, 60, 2e-5, seed=7, burst_length=10, burst_gap=1e-4
        )

        def run():
            service = SolveService(
                policy=BatchingPolicy(max_batch_size=8, max_wait=5e-4)
            )
            responses, rejected = replay(service, stream, timeout=5e-3)
            signature = [
                (r.request_id, r.outcome.value, r.objective, r.completion_time)
                for r in responses
            ]
            return signature, rejected, service.makespan, service.metrics.to_dict()

        first, second = run(), run()
        assert first[0] == second[0]      # same responses
        assert first[1] == second[1]      # same rejections
        assert first[2] == second[2]      # same simulated makespan
        assert first[3] == second[3]      # same per-stage metrics
