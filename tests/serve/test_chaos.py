"""Satellite: serve-layer chaos — crashes lose nothing, duplicate nothing.

A worker crash mid-batch must requeue exactly the in-flight members:
every admitted request gets exactly one response, no response is
duplicated, and the result cache never stores a failed answer.
"""

import pytest

from repro.faults.injector import injecting
from repro.faults.plan import (
    SITE_WORKER,
    FaultPlan,
    RetryPolicy,
    ScheduledFault,
)
from repro.serve.request import Outcome
from repro.serve.scheduler import WorkerPool
from repro.serve.service import SolveService
from repro.serve.workload import lp_pool, mip_pool


def _submit_all(service, problems, spacing=1e-4):
    return [service.submit(p, at=i * spacing) for i, p in enumerate(problems)]


def _crash_plan(at=0, retries=4):
    return FaultPlan(
        seed=0,
        scheduled=(ScheduledFault(site=SITE_WORKER, at=at),),
        retry=RetryPolicy(max_attempts=retries),
    )


class TestCrashRequeue:
    def test_concurrent_crash_requeues_exactly_in_flight(self):
        """Dispatch a MIP batch directly; the crash splits it cleanly."""
        pool_problems = mip_pool(4, num_items=6, seed=0)
        service = SolveService(num_workers=2)
        with injecting(_crash_plan()) as injector:
            ids = _submit_all(service, pool_problems)
            responses = service.close()
            assert injector.clean
        assert sorted(r.request_id for r in responses) == sorted(ids)
        assert all(r.ok for r in responses)
        # The members redone after the crash record their retry round.
        assert any(r.retries > 0 for r in responses)

    def test_lockstep_crash_requeues_whole_batch(self):
        problems = lp_pool(4, num_items=6, seed=1)
        service = SolveService(num_workers=2)
        with injecting(_crash_plan()) as injector:
            ids = _submit_all(service, problems)
            responses = service.close()
            assert injector.clean
        assert sorted(r.request_id for r in responses) == sorted(ids)
        assert all(r.ok for r in responses)

    def test_no_response_duplicated(self):
        problems = mip_pool(6, num_items=6, seed=2)
        service = SolveService(num_workers=2)
        plan = FaultPlan(
            seed=3,
            rates={SITE_WORKER: 0.3},
            max_faults=4,
            retry=RetryPolicy(max_attempts=6),
        )
        with injecting(plan) as injector:
            ids = _submit_all(service, problems)
            responses = service.close()
            assert injector.balanced
        answered = [r.request_id for r in responses]
        assert len(answered) == len(set(answered)) == len(ids)

    def test_hedged_redispatch_avoids_crashed_worker(self):
        problems = mip_pool(2, num_items=6, seed=4)
        service = SolveService(num_workers=2)
        with injecting(_crash_plan()) as injector:
            _submit_all(service, problems)
            responses = service.close()
            assert injector.clean
        retried = [r for r in responses if r.retries > 0]
        assert retried
        crashed_worker = 0  # first dispatch goes to the least-loaded rank 0
        assert all(r.worker != crashed_worker for r in retried)


class TestRetryExhaustion:
    def test_exhausted_retries_fail_cleanly(self):
        """Every dispatch crashes: requests fail, faults are escaped."""
        problems = mip_pool(2, num_items=6, seed=5)
        service = SolveService(num_workers=2)
        plan = FaultPlan(
            seed=6,
            rates={SITE_WORKER: 1.0},
            retry=RetryPolicy(max_attempts=2),
        )
        with injecting(plan) as injector:
            ids = _submit_all(service, problems)
            responses = service.close()
            assert injector.balanced
            assert injector.counts()["escaped"] > 0
        assert sorted(r.request_id for r in responses) == sorted(ids)
        failed = [r for r in responses if r.outcome is Outcome.FAILED]
        assert failed
        assert all(r.solver_status == "worker_crash" for r in failed)

    def test_cache_never_stores_failed_results(self):
        problems = mip_pool(2, num_items=6, seed=5)
        service = SolveService(num_workers=2)
        plan = FaultPlan(
            seed=6, rates={SITE_WORKER: 1.0}, retry=RetryPolicy(max_attempts=2)
        )
        with injecting(plan):
            _submit_all(service, problems)
            service.close()
        assert all(
            entry.outcome is Outcome.OK
            for entry in service.cache._entries.values()
        )

    def test_failed_member_not_served_to_followers_from_cache(self):
        """A post-crash duplicate must re-solve, not read a failed entry."""
        problem = mip_pool(1, num_items=6, seed=7)[0]
        plan = FaultPlan(
            seed=8, rates={SITE_WORKER: 1.0}, retry=RetryPolicy(max_attempts=1)
        )
        service = SolveService(num_workers=1)
        with injecting(plan):
            first = service.submit(problem, at=0.0)
            service.drain()
            assert service.result(first).outcome is Outcome.FAILED
        # Injection over: the same problem resubmitted must now succeed.
        again = service.submit(problem, at=service.now)
        service.drain()
        response = service.result(again)
        assert response.outcome is Outcome.OK
        assert not response.cached


class TestSchedulerDirect:
    def test_dispatch_outcome_partition(self):
        """completed + requeue is exactly the dispatched batch."""
        from repro.serve.request import SolveRequest, fingerprint

        problems = mip_pool(4, num_items=6, seed=9)
        batch = [
            SolveRequest(
                problem=p,
                arrival_time=0.0,
                request_id=i,
                fingerprint=fingerprint(p),
            )
            for i, p in enumerate(problems)
        ]
        pool = WorkerPool(num_workers=2)
        with injecting(_crash_plan()) as injector:
            out = pool.dispatch(batch, when=0.0)
        ids = sorted(
            [r.request_id for r in out.completed]
            + [r.request_id for r in out.requeue]
        )
        assert ids == [0, 1, 2, 3]
        assert out.requeue  # the crash lost at least one member
        assert out.pending_faults >= 1
        assert len(out.responses) == len(out.completed)
