"""Per-request solve deadlines through the serving stack.

A ``solve_deadline`` budgets *solve* time on the device's simulated
clock; when it expires mid-search the member comes back as
``Outcome.PARTIAL`` with the anytime incumbent, certified dual bound,
and gap — and partial answers must never poison the result cache.
"""

import numpy as np
import pytest

from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.serve import BatchingPolicy, Outcome, SolveService


def make_service(**kwargs):
    return SolveService(policy=BatchingPolicy(max_batch_size=4), **kwargs)


def hard_mip():
    return generate_knapsack(20, seed=11, correlation="strong")


class TestPartialOutcome:
    def test_deadline_hit_returns_partial(self):
        service = make_service()
        service.submit(hard_mip(), at=0.0, solve_deadline=1e-4)
        service.drain()
        response = service.result(0)
        assert response.outcome is Outcome.PARTIAL
        assert response.solver_status == "time_limit"
        assert np.isfinite(response.best_bound)
        assert response.gap >= 0.0
        # PARTIAL is a structured answer, not an error.
        response.raise_for_outcome()

    def test_partial_bound_is_sound(self):
        problem = hard_mip()
        optimum, _ = knapsack_dp_optimal(problem)
        service = make_service()
        service.submit(problem, at=0.0, solve_deadline=1e-4)
        service.drain()
        response = service.result(0)
        assert response.best_bound >= optimum - 1e-9
        if np.isfinite(response.objective):
            assert response.objective <= optimum + 1e-9

    def test_generous_deadline_still_ok(self):
        problem = generate_knapsack(12, seed=3)
        optimum, _ = knapsack_dp_optimal(problem)
        service = make_service()
        service.submit(problem, at=0.0, solve_deadline=1e6)
        service.drain()
        response = service.result(0)
        assert response.outcome is Outcome.OK
        assert response.objective == pytest.approx(optimum)
        assert response.gap == pytest.approx(0.0)

    def test_no_deadline_unaffected(self):
        problem = generate_knapsack(12, seed=3)
        service = make_service()
        service.submit(problem, at=0.0)
        service.drain()
        assert service.result(0).outcome is Outcome.OK

    def test_partial_counted_in_metrics(self):
        service = make_service()
        service.submit(hard_mip(), at=0.0, solve_deadline=1e-4)
        service.drain()
        snapshot = service.metrics.to_dict()["counters"]
        assert snapshot.get("serve.partial", 0) == 1
        assert snapshot.get("serve.deadline_hits", 0) == 1


class TestCacheHygiene:
    def test_partials_are_never_cached(self):
        # Small enough to re-solve exactly in well under a second, hard
        # enough that 1e-4 device-seconds still stops it partway.
        problem = generate_knapsack(14, seed=4, correlation="strong")
        service = make_service()
        service.submit(problem, at=0.0, solve_deadline=1e-4)
        service.drain()
        assert service.result(0).outcome is Outcome.PARTIAL
        # An identical later request must re-solve, not replay the
        # partial answer from cache.
        service.submit(problem, at=service.now + 1.0)
        service.drain()
        second = service.result(1)
        assert not second.cached
        assert second.outcome is Outcome.OK

    def test_bounds_survive_serialization(self):
        service = make_service()
        service.submit(hard_mip(), at=0.0, solve_deadline=1e-4)
        service.drain()
        data = service.result(0).to_dict()
        assert data["outcome"] == "partial"
        assert data["bounds"]["best_bound"] is not None
