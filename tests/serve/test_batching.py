"""Bucketing, batching policy validation, and the batch queue."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.lp.problem import LinearProgram
from repro.problems.knapsack import generate_knapsack
from repro.serve.batching import BatchQueue, BatchingPolicy, bucket_key
from repro.serve.request import SolveRequest


def lp(num_items, seed=0):
    return generate_knapsack(num_items, seed=seed).relaxation()


class TestBucketKey:
    def test_same_shape_lps_share_bucket(self):
        assert bucket_key(lp(10, seed=1)) == bucket_key(lp(10, seed=2))

    def test_different_shapes_split(self):
        assert bucket_key(lp(10)) != bucket_key(lp(12))

    def test_mip_and_lp_split(self):
        mip = generate_knapsack(10, seed=1)
        assert bucket_key(mip) != bucket_key(mip.relaxation())
        assert bucket_key(mip)[0] == "mip"

    def test_non_lockstep_lp_goes_solo(self):
        eq = LinearProgram(
            c=np.array([1.0, 1.0]),
            a_eq=np.array([[1.0, 1.0]]),
            b_eq=np.array([1.0]),
            ub=np.array([1.0, 1.0]),
        )
        assert bucket_key(eq)[0] == "lp-solo"
        assert bucket_key(lp(10))[0] == "lp"


class TestBatchingPolicy:
    def test_defaults_valid(self):
        policy = BatchingPolicy()
        assert policy.max_batch_size >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait": -1.0},
            {"max_queue_depth": 0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            BatchingPolicy(**kwargs)


class TestBatchQueue:
    def make_queue(self, **kwargs):
        return BatchQueue(BatchingPolicy(**kwargs))

    def request(self, problem, rid, at=0.0, timeout=None):
        return SolveRequest(
            problem=problem, arrival_time=at, timeout=timeout, request_id=rid
        )

    def test_push_pop_fifo(self):
        q = self.make_queue(max_batch_size=2)
        reqs = [self.request(lp(10, seed=i), rid=i) for i in range(3)]
        keys = {q.push(r) for r in reqs}
        assert len(keys) == 1
        key = keys.pop()
        assert q.depth == 3
        batch = q.pop_batch(key)
        assert [r.request_id for r in batch] == [0, 1]
        assert q.depth == 1

    def test_next_deadline_is_oldest_plus_max_wait(self):
        q = self.make_queue(max_wait=1e-3)
        q.push(self.request(lp(10, seed=1), rid=0, at=5e-4))
        q.push(self.request(lp(10, seed=2), rid=1, at=9e-4))
        when, _key = q.next_deadline()
        assert when == pytest.approx(5e-4 + 1e-3)

    def test_next_timeout_picks_earliest(self):
        q = self.make_queue()
        q.push(self.request(lp(10, seed=1), rid=0, at=0.0, timeout=5e-3))
        q.push(self.request(lp(10, seed=2), rid=1, at=0.0, timeout=1e-3))
        q.push(self.request(lp(10, seed=3), rid=2, at=0.0))  # no timeout
        when, req = q.next_timeout()
        assert when == pytest.approx(1e-3)
        assert req.request_id == 1

    def test_remove(self):
        q = self.make_queue()
        req = self.request(lp(10, seed=1), rid=0)
        q.push(req)
        q.remove(req)
        assert q.depth == 0
        assert q.next_deadline() is None
