"""Injection at the device layer: kernel retries, ECC, transfers."""

import numpy as np
import pytest

from repro.device.gpu import Device
from repro.device.spec import V100
from repro.errors import EccError, KernelFaultError, TransferFaultError
from repro.faults.injector import FaultInjector, active, injecting
from repro.faults.plan import (
    SITE_ECC,
    SITE_KERNEL,
    SITE_TRANSFER,
    FaultPlan,
    RetryPolicy,
    ScheduledFault,
)


def _charge_some(device, n=8):
    a = device.upload(np.eye(16))
    for _ in range(n):
        device.gemm(a, a)
    device.synchronize()


class TestInjectingContext:
    def test_active_only_inside_context(self):
        assert active() is None
        with injecting(FaultPlan()) as injector:
            assert active() is injector
        assert active() is None

    def test_nested_injection_rejected(self):
        from repro.errors import FaultError

        with injecting(FaultPlan()):
            with pytest.raises(FaultError):
                with injecting(FaultPlan()):
                    pass


class TestKernelFaults:
    def test_scheduled_kernel_fault_charges_overhead(self):
        clean = Device(V100)
        _charge_some(clean)

        plan = FaultPlan(seed=0, scheduled=(ScheduledFault(site=SITE_KERNEL, at=2),))
        with injecting(plan) as injector:
            faulty = Device(V100)
            _charge_some(faulty)
            assert injector.counts()["injected"] == 1
            assert injector.counts()["recovered"] == 1
            assert injector.clean
        assert faulty.clock.now > clean.clock.now
        assert faulty.metrics.count("faults.kernel_retries") == 1

    def test_exhausted_retries_raise_with_fault_count(self):
        plan = FaultPlan(
            seed=0,
            scheduled=tuple(
                ScheduledFault(site=SITE_KERNEL, at=i) for i in range(3)
            ),
            retry=RetryPolicy(max_attempts=3),
        )
        with injecting(plan):
            device = Device(V100)
            with pytest.raises(KernelFaultError) as info:
                _charge_some(device)
            assert info.value.fault_count == 3

    def test_ecc_raises_immediately(self):
        plan = FaultPlan(seed=0, scheduled=(ScheduledFault(site=SITE_ECC, at=0),))
        with injecting(plan):
            device = Device(V100)
            with pytest.raises(EccError) as info:
                _charge_some(device)
            assert info.value.fault_count == 1


class TestTransferFaults:
    def test_timeout_costs_more_than_clean_run(self):
        clean = Device(V100)
        clean.upload(np.ones((64, 64)))
        clean.synchronize()

        plan = FaultPlan(
            seed=0,
            scheduled=(ScheduledFault(site=SITE_TRANSFER, at=0, kind="timeout"),),
        )
        with injecting(plan) as injector:
            faulty = Device(V100)
            faulty.upload(np.ones((64, 64)))
            faulty.synchronize()
            assert injector.clean
        assert faulty.clock.now > clean.clock.now
        assert faulty.metrics.count("faults.transfer_retries") == 1

    def test_exhausted_transfer_retries_raise(self):
        plan = FaultPlan(
            seed=0,
            scheduled=tuple(
                ScheduledFault(site=SITE_TRANSFER, at=i, kind="corrupt")
                for i in range(2)
            ),
            retry=RetryPolicy(max_attempts=2),
        )
        with injecting(plan):
            device = Device(V100)
            with pytest.raises(TransferFaultError):
                device.upload(np.ones((8, 8)))


class TestDeterminism:
    def test_same_plan_same_draws(self):
        plan = FaultPlan(seed=9, rates={SITE_KERNEL: 0.2}, max_faults=50)

        def run():
            with injecting(plan) as injector:
                device = Device(V100)
                try:
                    _charge_some(device, n=20)
                except Exception:
                    pass
                return injector.counts(), device.clock.now

        assert run() == run()

    def test_per_site_streams_independent(self):
        # Consuming draws at one site must not shift another site's.
        a = FaultInjector(FaultPlan(seed=5, rates={SITE_KERNEL: 0.3}))
        b = FaultInjector(FaultPlan(seed=5, rates={SITE_KERNEL: 0.3}))
        for _ in range(10):
            b.fire(SITE_TRANSFER)
        kernel_a = [a.fire(SITE_KERNEL) for _ in range(20)]
        kernel_b = [b.fire(SITE_KERNEL) for _ in range(20)]
        assert kernel_a == kernel_b

    def test_budget_caps_rate_based_faults(self):
        injector = FaultInjector(
            FaultPlan(seed=1, rates={SITE_KERNEL: 1.0}, max_faults=2)
        )
        fired = sum(injector.fire(SITE_KERNEL) is not None for _ in range(50))
        assert fired == 2

    def test_scheduled_faults_bypass_budget(self):
        injector = FaultInjector(
            FaultPlan(
                seed=1,
                scheduled=(ScheduledFault(site=SITE_KERNEL, at=5),),
                max_faults=0,
            )
        )
        fired = [injector.fire(SITE_KERNEL) is not None for _ in range(10)]
        assert fired == [i == 5 for i in range(10)]
