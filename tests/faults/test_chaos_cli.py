"""The ``repro chaos`` subcommand and the chaos harness surface."""

import json
import os

import pytest

from repro.cli import main
from repro.faults.chaos import ChaosReport, builtin_corpus, run_chaos
from repro.faults.plan import SITE_WORKER, FaultPlan, PLAN_FORMAT_VERSION


class TestCorpus:
    def test_builtin_corpus_is_deterministic(self):
        assert builtin_corpus(0) == builtin_corpus(0)
        assert builtin_corpus(0) != builtin_corpus(1)

    def test_corpus_covers_every_site(self):
        from repro.faults.plan import SITES

        corpus = builtin_corpus(0)
        for site in SITES:
            assert any(plan.touches(site) for plan in corpus), site


class TestHarness:
    def test_single_plan_replay(self):
        plan = builtin_corpus(0)[1]  # ecc-degrade: one scheduled fault
        report = run_chaos([plan], items=6, requests=4)
        assert isinstance(report, ChaosReport)
        assert report.ok
        assert report.total_injected >= 1
        doc = report.to_dict()
        assert doc["ok"] is True
        assert all("counts" in run for run in doc["runs"])

    def test_failure_detail_reaches_report(self):
        # An unsurvivable plan: worker crashes every time, one attempt.
        from repro.faults.plan import RetryPolicy

        plan = FaultPlan(
            seed=0,
            rates={SITE_WORKER: 1.0},
            retry=RetryPolicy(max_attempts=1),
            name="doomed",
        )
        report = run_chaos([plan], items=6, requests=3)
        assert not report.ok
        failed = [run for run in report.runs if not run.ok]
        assert failed and failed[0].detail


class TestCli:
    def test_save_plans_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        assert main(["chaos", "--save-plans", str(out)]) == 0
        files = sorted(os.listdir(out))
        assert len(files) == len(builtin_corpus(0))
        doc = json.loads((out / files[0]).read_text())
        assert doc["version"] == PLAN_FORMAT_VERSION

    def test_replay_saved_plan(self, tmp_path, capsys):
        plan = builtin_corpus(0)[1]  # ecc-degrade
        path = tmp_path / "plan.json"
        plan.save(str(path))
        code = main(
            ["chaos", "--plan", str(path), "--items", "6", "--requests", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos: OK" in out
        assert "ecc-degrade" in out

    def test_failing_plan_sets_exit_code(self, tmp_path, capsys):
        doc = {
            "version": PLAN_FORMAT_VERSION,
            "name": "doomed",
            "seed": 0,
            "rates": {SITE_WORKER: 1.0},
            "retry": {"max_attempts": 1},
        }
        path = tmp_path / "doomed.json"
        path.write_text(json.dumps(doc))
        code = main(
            ["chaos", "--plan", str(path), "--items", "6", "--requests", "3"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "chaos: FAILED" in out

    def test_trace_export(self, tmp_path, capsys):
        plan = builtin_corpus(0)[1]
        path = tmp_path / "plan.json"
        plan.save(str(path))
        trace = tmp_path / "trace.json"
        code = main(
            [
                "chaos", "--plan", str(path), "--items", "6",
                "--requests", "4", "--no-serve", "--trace", str(trace),
            ]
        )
        assert code == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
