"""Satellite: checkpoint-based crash recovery is exact.

Kill the B&B driver at every k-th node, resume from the latest
snapshot, and require the same incumbent and dual bound as the
uninterrupted run.
"""

import numpy as np
import pytest

from repro.api import SolveOptions, solve
from repro.errors import SolverCrashError
from repro.faults.injector import injecting
from repro.faults.plan import SITE_NODE, FaultPlan, ScheduledFault
from repro.faults.recovery import solve_with_checkpoint_resume
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack
from repro.problems.random_mip import generate_random_mip


def _baseline(problem):
    return BranchAndBoundSolver(problem, SolverOptions()).solve()


def _kill_every(k: int, horizon: int) -> FaultPlan:
    return FaultPlan(
        seed=0,
        scheduled=tuple(
            ScheduledFault(site=SITE_NODE, at=at)
            for at in range(k - 1, horizon, k)
        ),
    )


class TestKillEveryKthNode:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_resume_matches_uninterrupted(self, k):
        problem = generate_knapsack(9, seed=5)
        base = _baseline(problem)
        # Generous horizon: occurrence counters survive restarts, so
        # this schedules kills well past the uninterrupted node count.
        plan = _kill_every(k, horizon=10 * max(1, base.stats.nodes_processed))
        with injecting(plan) as injector:
            result, stats = solve_with_checkpoint_resume(
                problem, checkpoint_every=1
            )
            assert injector.clean
        assert stats.restarts > 0
        assert result.status is base.status
        assert result.objective == pytest.approx(base.objective, abs=1e-9)
        assert result.best_bound == pytest.approx(base.best_bound, abs=1e-9)
        np.testing.assert_allclose(result.x, base.x, atol=1e-9)

    @pytest.mark.parametrize("every", [2, 4])
    def test_sparser_checkpoints_still_exact(self, every):
        problem = generate_random_mip(8, 5, seed=2)
        base = _baseline(problem)
        plan = _kill_every(3, horizon=10 * max(1, base.stats.nodes_processed))
        with injecting(plan) as injector:
            result, stats = solve_with_checkpoint_resume(
                problem, checkpoint_every=every
            )
            assert injector.clean
        assert result.status is base.status
        if base.x is not None:
            assert result.objective == pytest.approx(base.objective, abs=1e-9)
        assert result.best_bound == pytest.approx(base.best_bound, abs=1e-9)


class TestCrashWiring:
    def test_solver_raises_without_recovery_driver(self):
        problem = generate_knapsack(8, seed=1)
        plan = FaultPlan(
            seed=0, scheduled=(ScheduledFault(site=SITE_NODE, at=0),)
        )
        with injecting(plan):
            solver = BranchAndBoundSolver(problem, SolverOptions())
            with pytest.raises(SolverCrashError):
                solver.solve()

    def test_api_routes_node_plans_through_resume(self):
        problem = generate_knapsack(8, seed=1)
        base = solve(problem, SolveOptions(strategy="direct"))
        plan = FaultPlan(
            seed=0, scheduled=(ScheduledFault(site=SITE_NODE, at=1),)
        )
        report = solve(
            problem,
            SolveOptions(
                strategy="direct",
                solver=SolverOptions(checkpoint_every=1),
                fault_plan=plan,
            ),
        )
        assert report.status == base.status
        assert report.objective == pytest.approx(base.objective)
        assert report.metrics["faults"]["recovered"] == 1
        assert report.metrics["resume"]["restarts"] == 1
