"""Satellite: property-based chaos (hypothesis).

For *any* generated survivable fault plan, the recovered solution must
pass :mod:`repro.check`'s exact certificate audit and agree with the
differential re-solve — and the injector's books must balance with
nothing escaped.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import SolveOptions, solve
from repro.check import certify_mip_result, differential_mip
from repro.faults.injector import injecting
from repro.faults.plan import (
    SITE_ECC,
    SITE_KERNEL,
    SITE_NODE,
    SITE_TRANSFER,
    SITE_WORKER,
    FaultPlan,
    RetryPolicy,
)
from repro.mip.solver import SolverOptions
from repro.problems.knapsack import generate_knapsack

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def survivable_plans(draw):
    """Any plan whose budget/retry arithmetic guarantees completion.

    ``retry.max_attempts > max_faults`` means no retry loop can burn
    its whole budget on rate-based faults, and ``degrade=True`` absorbs
    whatever remains — so zero faults can escape.
    """
    budget = draw(st.integers(min_value=0, max_value=4))
    sites = (SITE_KERNEL, SITE_ECC, SITE_TRANSFER, SITE_WORKER, SITE_NODE)
    rates = {}
    for site in draw(st.sets(st.sampled_from(sites), min_size=1, max_size=4)):
        rates[site] = draw(
            st.floats(min_value=0.01, max_value=0.3, allow_nan=False)
        )
    return FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        rates=rates,
        max_faults=budget,
        retry=RetryPolicy(max_attempts=budget + 2),
        degrade=True,
    )


@SLOW
@given(plan=survivable_plans(), problem_seed=st.integers(0, 50))
def test_survivable_plan_yields_certified_solution(plan, problem_seed):
    problem = generate_knapsack(7, seed=problem_seed)
    with injecting(plan) as injector:
        report = solve(
            problem,
            SolveOptions(
                strategy="gpu_only",
                solver=SolverOptions(checkpoint_every=2),
            ),
        )
        counts = injector.counts()
        assert injector.balanced, counts
        assert counts["escaped"] == 0, counts
    assert report.ok
    certificate = certify_mip_result(problem, report.result)
    assert certificate.ok, [c.name for c in certificate.checks if not c.ok]


@SLOW
@given(plan=survivable_plans())
def test_survivable_plan_agrees_with_differential_audit(plan):
    problem = generate_knapsack(6, seed=13)
    with injecting(plan) as injector:
        report = solve(
            problem,
            SolveOptions(
                strategy="hybrid",
                solver=SolverOptions(checkpoint_every=2),
            ),
        )
        assert injector.clean
    # Cross-solver agreement, run outside injection: the faulty run's
    # answer must match what independent clean solvers produce.
    diff = differential_mip(problem)
    assert diff.ok
    reference = diff.runs[0].objective
    assert report.objective == pytest.approx(reference, rel=1e-6)
