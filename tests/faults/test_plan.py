"""FaultPlan construction, validation, and the replay corpus format."""

import pytest

from repro.errors import FaultError
from repro.faults.plan import (
    SITE_ECC,
    SITE_KERNEL,
    SITE_RANK,
    SITE_WORKER,
    SITES,
    FaultPlan,
    RetryPolicy,
    ScheduledFault,
)


class TestValidation:
    def test_unknown_site_in_rates_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(rates={"device.nope": 0.1})

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(rates={SITE_KERNEL: 1.5})

    def test_unknown_scheduled_site_rejected(self):
        with pytest.raises(FaultError):
            ScheduledFault(site="bogus", at=0)

    def test_rank_fault_requires_rank(self):
        with pytest.raises(FaultError):
            ScheduledFault(site=SITE_RANK, at=0)
        ScheduledFault(site=SITE_RANK, at=0, rank=1)  # ok


class TestIntrospection:
    def test_touches_via_rate_and_schedule(self):
        plan = FaultPlan(
            rates={SITE_KERNEL: 0.1},
            scheduled=(ScheduledFault(site=SITE_ECC, at=2),),
        )
        assert plan.touches(SITE_KERNEL)
        assert plan.touches(SITE_ECC)
        assert not plan.touches(SITE_WORKER)
        assert not plan.empty

    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(rates={SITE_KERNEL: 0.0}).touches(SITE_KERNEL)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        plan = FaultPlan(
            seed=42,
            rates={SITE_KERNEL: 0.05, SITE_WORKER: 0.2},
            scheduled=(
                ScheduledFault(site=SITE_ECC, at=3),
                ScheduledFault(site=SITE_RANK, at=1, rank=2, kind=""),
            ),
            max_faults=5,
            retry=RetryPolicy(max_attempts=7, base_delay=2e-4),
            degrade=False,
            transfer_timeout_factor=3.0,
            name="roundtrip",
        )
        path = tmp_path / "plan.json"
        plan.save(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_version_mismatch_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_dict({"version": 999})


class TestConstructors:
    def test_generate_is_deterministic(self):
        assert FaultPlan.generate(3) == FaultPlan.generate(3)
        assert FaultPlan.generate(3) != FaultPlan.generate(4)

    def test_generate_unknown_intensity(self):
        with pytest.raises(FaultError):
            FaultPlan.generate(0, intensity="apocalyptic")

    def test_survivable_budget_vs_retries(self):
        plan = FaultPlan.survivable(0, budget=3)
        assert plan.max_faults == 3
        assert plan.retry.max_attempts > plan.max_faults
        assert plan.degrade

    def test_all_sites_recognised(self):
        for site in SITES:
            rank = 0 if site == SITE_RANK else -1
            ScheduledFault(site=site, at=0, rank=rank)
