"""Rank-loss recovery: the distributed solve survives dropped ranks."""

import pytest

from repro.errors import RankLostError
from repro.faults.injector import injecting
from repro.faults.plan import SITE_RANK, FaultPlan, ScheduledFault
from repro.faults.recovery import solve_distributed_with_recovery
from repro.problems.knapsack import generate_knapsack


def _drop(rank: int, at: int) -> FaultPlan:
    return FaultPlan(
        seed=0, scheduled=(ScheduledFault(site=SITE_RANK, at=at, rank=rank),)
    )


class TestRankRecovery:
    def test_baseline_unchanged_without_faults(self):
        problem = generate_knapsack(7, seed=11)
        run = solve_distributed_with_recovery(problem, num_workers=2)
        assert run.restarts == 0
        assert run.incumbent is not None

    @pytest.mark.parametrize("rank,at", [(1, 1), (2, 2), (1, 4)])
    def test_incumbent_matches_after_drop(self, rank, at):
        problem = generate_knapsack(7, seed=11)
        base = solve_distributed_with_recovery(problem, num_workers=2)
        with injecting(_drop(rank, at)) as injector:
            run = solve_distributed_with_recovery(problem, num_workers=2)
            assert injector.clean
            assert injector.counts()["injected"] == 1
        assert run.restarts == 1
        assert run.incumbent == pytest.approx(base.incumbent, abs=1e-9)

    def test_multiple_drops_across_ranks(self):
        problem = generate_knapsack(7, seed=11)
        base = solve_distributed_with_recovery(problem, num_workers=3)
        plan = FaultPlan(
            seed=0,
            scheduled=(
                ScheduledFault(site=SITE_RANK, at=1, rank=1),
                ScheduledFault(site=SITE_RANK, at=2, rank=3),
            ),
        )
        with injecting(plan) as injector:
            run = solve_distributed_with_recovery(problem, num_workers=3)
            assert injector.clean
        assert run.restarts == 2
        assert run.incumbent == pytest.approx(base.incumbent, abs=1e-9)

    def test_unhandled_drop_raises(self):
        from repro.strategies.distributed import solve_distributed

        problem = generate_knapsack(7, seed=11)
        with injecting(_drop(1, 1)):
            with pytest.raises(RankLostError):
                solve_distributed(problem, num_workers=2)
