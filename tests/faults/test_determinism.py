"""Satellite: chaos runs are replayable.

The same :class:`FaultPlan` seed against the same workload must produce
the *identical* :meth:`SolveReport.to_dict` — same faults, same
recoveries, same simulated makespan — for every registered strategy.
"""

import pytest

from repro.api import SolveOptions, solve
from repro.faults.plan import FaultPlan
from repro.mip.solver import SolverOptions
from repro.problems.knapsack import generate_knapsack
from repro.strategies import registry


def _run(strategy: str, plan: FaultPlan) -> dict:
    problem = generate_knapsack(7, seed=3)
    report = solve(
        problem,
        SolveOptions(
            strategy=strategy,
            solver=SolverOptions(checkpoint_every=2),
            fault_plan=plan,
        ),
    )
    return report.to_dict()


@pytest.mark.parametrize("strategy", registry.available_strategies())
def test_identical_plan_identical_report(strategy):
    plan = FaultPlan.survivable(seed=17, budget=3)
    first = _run(strategy, plan)
    second = _run(strategy, plan)
    assert first == second


@pytest.mark.parametrize("strategy", ["gpu_only", "hybrid"])
def test_different_seed_may_differ_but_stays_correct(strategy):
    baseline = _run(strategy, FaultPlan())  # empty plan: no faults
    chaotic = _run(strategy, FaultPlan.survivable(seed=23, budget=3))
    assert chaotic["status"] == baseline["status"]
    assert chaotic["objective"] == pytest.approx(baseline["objective"])
