"""Schema stability of the one shared report shape.

:func:`repro.reporting.report_dict` is the canonical JSON report; the
three public surfaces (:meth:`repro.api.SolveReport.to_dict`,
:meth:`repro.strategies.engine.StrategyReport.to_dict`,
:meth:`repro.serve.SolveResponse.to_dict`) all delegate to it.  These
tests pin the contract dashboards rely on: the core keys always come
first and in the same order, ``bounds`` always carries the same
sub-keys, and non-finite numbers always export as ``None``.
"""

import json

import numpy as np

from repro.api import SolveOptions, SolveReport, solve
from repro.problems.knapsack import generate_knapsack
from repro.reporting import CORE_REPORT_KEYS, report_dict
from repro.serve.service import SolveService


def core_prefix(d):
    return tuple(list(d)[: len(CORE_REPORT_KEYS)])


class TestCanonicalShape:
    def test_core_keys_and_order(self):
        d = report_dict(status="optimal", objective=1.0, strategy="direct")
        assert core_prefix(d) == CORE_REPORT_KEYS
        assert set(d["bounds"]) == {"best_bound", "gap"}

    def test_non_finite_numbers_export_as_none(self):
        d = report_dict(
            status="infeasible",
            objective=float("nan"),
            strategy=None,
            best_bound=float("-inf"),
            gap=float("inf"),
        )
        assert d["objective"] is None
        assert d["bounds"]["best_bound"] is None
        assert d["bounds"]["gap"] is None

    def test_optional_sections_omitted_until_supplied(self):
        bare = report_dict(status="ok", objective=0.0, strategy="lp")
        assert "nodes" not in bare and "metrics" not in bare
        full = report_dict(
            status="ok", objective=0.0, strategy="lp", nodes=3, metrics={}
        )
        assert list(full)[-2:] == ["nodes", "metrics"]


class TestSurfacesAgree:
    def test_all_three_surfaces_share_the_core(self):
        problem = generate_knapsack(8, seed=3)
        report = solve(problem, SolveOptions(strategy="hybrid"))
        api_dict = report.to_dict()
        strategy_dict = report.strategy_report.to_dict()

        service = SolveService(num_workers=1)
        service.submit(problem, at=0.0)
        service.close()
        serve_dict = service.result(0).to_dict()

        for d in (api_dict, strategy_dict, serve_dict):
            assert core_prefix(d) == CORE_REPORT_KEYS
            assert set(d["bounds"]) == {"best_bound", "gap"}
            json.dumps(d, default=float)  # serializable end to end
        assert api_dict["status"] == strategy_dict["status"] == "optimal"
        assert api_dict["objective"] == strategy_dict["objective"]
        assert serve_dict["objective"] == api_dict["objective"]

    def test_heuristic_mode_flows_to_every_surface(self):
        problem = generate_knapsack(12, seed=1)
        report = solve(problem, SolveOptions(mode="heuristic_only"))
        assert report.to_dict()["mode"] == "heuristic_only"

        service = SolveService(num_workers=1)
        service.submit(problem, at=0.0, mode="heuristic_only", gap_target=0.1)
        service.close()
        d = service.result(0).to_dict()
        assert d["mode"] == "heuristic_only"
        assert d["status"] == "heuristic"
        assert d["bounds"]["gap"] is not None

    def test_exact_reports_default_mode(self):
        report = SolveReport(
            status="optimal", objective=1.0, x=None, strategy="direct"
        )
        d = report.to_dict()
        assert d["mode"] == "exact"
        assert np.isfinite(d["objective"])
