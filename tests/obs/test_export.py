"""Chrome-trace / JSONL export, validation, and summary round-trips."""

import json

import pytest

from repro import obs
from repro.obs.export import (
    PID_HOST,
    PID_SIM,
    load_trace,
    summarize_spans,
    summarize_trace_file,
    to_chrome_trace,
    to_jsonl_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def make_tracer():
    """Two host spans (nested) + two sim spans on distinct tracks."""
    ticks = iter(range(100))
    tracer = obs.Tracer(trace_id="trace-export", clock=lambda: float(next(ticks)))
    with tracer.span("solve", category="mip"):
        with tracer.span("node", category="mip", node=0):
            pass
    tracer.sim_span("gemv", 0.5, 0.25, "gpu0", category="kernel")
    tracer.sim_span("h2d", 0.0, 0.5, "link", category="transfer", nbytes=64)
    return tracer


class TestChromeTrace:
    def test_exports_validate_clean(self):
        trace = to_chrome_trace(make_tracer())
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["trace_id"] == "trace-export"
        assert trace["otherData"]["spans"] == 4

    def test_timelines_map_to_processes(self):
        trace = to_chrome_trace(make_tracer())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in xs}
        assert by_name["solve"]["pid"] == PID_HOST
        assert by_name["gemv"]["pid"] == PID_SIM
        assert by_name["h2d"]["pid"] == PID_SIM
        # Distinct sim tracks get distinct thread rows.
        assert by_name["gemv"]["tid"] != by_name["h2d"]["tid"]

    def test_track_names_emitted_as_metadata(self):
        trace = to_chrome_trace(make_tracer())
        thread_names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"gpu0", "link"} <= thread_names

    def test_units_are_microseconds(self):
        trace = to_chrome_trace(make_tracer())
        gemv = next(e for e in trace["traceEvents"] if e.get("name") == "gemv")
        assert gemv["ts"] == pytest.approx(0.5e6)
        assert gemv["dur"] == pytest.approx(0.25e6)

    def test_parent_links_survive_export(self):
        tracer = make_tracer()
        trace = to_chrome_trace(tracer)
        solve = tracer.find("solve")[0]
        node_ev = next(e for e in trace["traceEvents"] if e.get("name") == "node")
        assert node_ev["args"]["parent_id"] == solve.span_id

    def test_file_round_trip(self, tmp_path):
        tracer = make_tracer()
        path = str(tmp_path / "trace.json")
        written = write_chrome_trace(tracer, path)
        loaded = load_trace(path)
        assert loaded == json.loads(json.dumps(written))
        assert validate_chrome_trace(loaded) == []
        # The summary recomputed from disk matches the in-memory one.
        from_file = summarize_trace_file(loaded)
        in_memory = summarize_spans(tracer.spans)
        assert [row[:4] for row in from_file] == pytest.approx(
            [row[:4] for row in in_memory]
        )

    def test_numpy_attrs_are_json_safe(self):
        import numpy as np

        tracer = make_tracer()
        tracer.sim_span("k", 0.0, 1.0, "gpu0", m=np.int64(5), x=np.float64(0.5))
        trace = to_chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        json.dumps(trace)  # must not raise


class TestValidate:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([1, 2]) != []
        assert validate_chrome_trace({"nope": 1}) != []

    def test_flags_bad_events(self):
        trace = {
            "traceEvents": [
                {"ph": "Q", "name": "x", "pid": 1, "tid": 0, "ts": 0.0},
                {"ph": "X", "name": "", "pid": 1, "tid": 0, "ts": 0.0, "dur": 1.0},
                {"ph": "X", "name": "neg", "pid": 1, "tid": 0, "ts": -1.0, "dur": 1.0},
                {"ph": "X", "name": "nodur", "pid": 1, "tid": 0, "ts": 0.0},
            ]
        }
        problems = validate_chrome_trace(trace)
        assert len(problems) == 4
        assert any("bad phase" in p for p in problems)
        assert any("missing name" in p for p in problems)
        assert any("bad ts" in p for p in problems)
        assert any("bad dur" in p for p in problems)


class TestJsonl:
    def test_line_per_span(self, tmp_path):
        tracer = make_tracer()
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(tracer, path) == 4
        lines = [json.loads(line) for line in open(path)]
        assert [rec["name"] for rec in lines] == ["node", "solve", "gemv", "h2d"]
        assert all(rec["trace_id"] == "trace-export" for rec in lines)

    def test_records_carry_span_fields(self):
        tracer = make_tracer()
        rec = json.loads(list(to_jsonl_lines(tracer))[-1])
        assert rec["name"] == "h2d"
        assert rec["timeline"] == obs.SIM
        assert rec["track"] == "link"
        assert rec["attrs"] == {"nbytes": 64}


class TestSummaries:
    def test_rows_aggregate_and_sort_by_total(self):
        tracer = obs.Tracer(trace_id="t", clock=lambda: 0.0)
        tracer.sim_span("small", 0.0, 0.1, "a")
        tracer.sim_span("big", 0.0, 1.0, "a")
        tracer.sim_span("big", 1.0, 3.0, "a")
        rows = summarize_spans(tracer.spans)
        assert rows[0][:3] == (obs.SIM, "big", 2)
        assert rows[0][3] == pytest.approx(4.0)  # total
        assert rows[0][4] == pytest.approx(2.0)  # mean
        assert rows[0][5] == pytest.approx(3.0)  # max
        assert rows[1][1] == "small"
