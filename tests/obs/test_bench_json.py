"""Benchmark JSON artifacts: schema validation, determinism, round-trips."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    bench_payload,
    load_bench_json,
    validate_bench_payload,
    write_bench_json,
)

ROWS = [{"m": 4, "seconds": 0.25, "label": "a"}, {"m": 8, "seconds": 0.5, "label": "b"}]


class TestPayload:
    def test_assembles_and_validates(self):
        payload = bench_payload(
            "demo", ROWS, params={"batch": 4}, summary={"crossover_m": None}
        )
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert validate_bench_payload(payload) is payload

    def test_metrics_block_is_optional(self):
        payload = bench_payload("demo", ROWS, metrics={"counters": {"gemm": 3}})
        assert validate_bench_payload(payload)["metrics"] == {"counters": {"gemm": 3}}

    def test_rows_are_copied(self):
        row = {"m": 4}
        payload = bench_payload("demo", [row])
        row["m"] = 99
        assert payload["rows"][0]["m"] == 4


class TestValidation:
    def test_rejects_wrong_schema_version(self):
        payload = bench_payload("demo", ROWS)
        payload["schema_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(ReproError, match="schema_version"):
            validate_bench_payload(payload)

    def test_rejects_empty_bench_name(self):
        with pytest.raises(ReproError, match="'bench'"):
            validate_bench_payload(
                {"schema_version": BENCH_SCHEMA_VERSION, "bench": "", "rows": ROWS}
            )

    def test_rejects_empty_rows(self):
        with pytest.raises(ReproError, match="'rows'"):
            bench_payload("demo", [])

    def test_rejects_non_scalar_row_values(self):
        with pytest.raises(ReproError, match="rows\\[0\\]"):
            bench_payload("demo", [{"sizes": [1, 2, 3]}])

    def test_rejects_non_finite_floats(self):
        with pytest.raises(ReproError, match="non-finite"):
            bench_payload("demo", [{"seconds": float("nan")}])
        with pytest.raises(ReproError, match="non-finite"):
            bench_payload("demo", ROWS, summary={"speedup": float("inf")})

    def test_rejects_unknown_top_level_keys(self):
        payload = bench_payload("demo", ROWS)
        payload["timestamp"] = "2026-01-01"  # deliberately excluded field
        with pytest.raises(ReproError, match="unknown top-level"):
            validate_bench_payload(payload)

    def test_rejects_non_dict_payload(self):
        with pytest.raises(ReproError):
            validate_bench_payload([ROWS])


class TestFileRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "bench.json"
        payload = bench_payload("demo", ROWS, summary={"best": 0.25})
        write_bench_json(path, payload)
        assert load_bench_json(path) == payload

    def test_writing_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        payload = bench_payload("demo", ROWS, params={"z": 1, "a": 2})
        write_bench_json(a, payload)
        write_bench_json(b, json.loads(json.dumps(payload)))
        assert a.read_bytes() == b.read_bytes()

    def test_write_refuses_invalid_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        with pytest.raises(ReproError):
            write_bench_json(path, {"bench": "demo"})
        assert not path.exists()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="missing"):
            load_bench_json(tmp_path / "absent.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_bench_json(path)

    def test_load_schema_invalid_file(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"schema_version": 0, "bench": "x", "rows": [{}]}))
        with pytest.raises(ReproError, match="schema_version"):
            load_bench_json(path)
