"""MetricsRegistry instruments, lifecycle, and deterministic export."""

import math

import pytest

from repro.metrics import Metrics
from repro.obs.registry import Histogram, MetricsRegistry, percentile_of


class TestPercentileOf:
    def test_empty_is_nan(self):
        assert math.isnan(percentile_of([], 50.0))

    def test_single_value(self):
        assert percentile_of([7.0], 0.0) == 7.0
        assert percentile_of([7.0], 100.0) == 7.0

    def test_linear_interpolation(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile_of(data, 0.0) == 1.0
        assert percentile_of(data, 100.0) == 4.0
        assert percentile_of(data, 50.0) == pytest.approx(2.5)
        assert percentile_of(data, 25.0) == pytest.approx(1.75)

    def test_order_independent(self):
        assert percentile_of([4.0, 1.0, 3.0, 2.0], 50.0) == pytest.approx(2.5)


class TestInstruments:
    def test_counter_handle_shares_store(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(4)
        assert reg.counter("hits").value == 5
        assert reg.counters["hits"] == 5

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        assert math.isnan(gauge.value)
        gauge.set(3)
        gauge.set(17)
        assert gauge.value == 17.0

    def test_histogram_stats(self):
        hist = Histogram()
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.mean == pytest.approx(2.0)
        assert hist.percentile(50.0) == 2.0

    def test_histogram_summary_shape(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.observe("lat", float(v))
        summary = reg.histogram("lat").summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0 and summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p95"] == pytest.approx(95.05)
        assert summary["p99"] == pytest.approx(99.01)

    def test_percentile_of_missing_histogram_is_nan(self):
        assert math.isnan(MetricsRegistry().percentile("nope", 50.0))


class TestLifecycle:
    def test_merge_covers_all_families(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("k", 1)
        a.add_time("t", 0.5)
        a.observe("h", 1.0)
        b.inc("k", 2)
        b.add_time("t", 0.25)
        b.gauge("g").set(9)
        b.observe("h", 3.0)
        a.merge(b)
        assert a.counters["k"] == 3
        assert a.times["t"] == pytest.approx(0.75)
        assert a.gauges["g"] == 9.0
        assert a.histogram("h").values == [1.0, 3.0]

    def test_snapshot_is_independent(self):
        reg = MetricsRegistry()
        reg.inc("k")
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        reg.inc("k")
        reg.observe("h", 2.0)
        assert snap.counters["k"] == 1
        assert snap.histogram("h").values == [1.0]

    def test_diff_keeps_only_new_activity(self):
        reg = MetricsRegistry()
        reg.inc("old", 5)
        reg.observe("h", 1.0)
        before = reg.snapshot()
        reg.inc("new", 2)
        reg.add_time("t", 0.5)
        reg.observe("h", 2.0)
        reg.observe("h", 3.0)
        delta = reg.diff(before)
        assert "old" not in delta.counters  # unchanged → dropped
        assert delta.counters["new"] == 2
        assert delta.times["t"] == pytest.approx(0.5)
        assert delta.histogram("h").values == [2.0, 3.0]

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("k")
        reg.add_time("t", 1.0)
        reg.gauge("g").set(1)
        reg.observe("h", 1.0)
        reg.reset()
        assert not reg.counters and not reg.times
        assert not reg.gauges and not reg.histograms


class TestExport:
    def test_to_dict_sorted_and_legacy_shape(self):
        reg = MetricsRegistry()
        reg.inc("zeta")
        reg.inc("alpha")
        reg.add_time("late", 1.0)
        reg.add_time("early", 2.0)
        out = reg.to_dict()
        # Only the legacy keys until gauges/histograms are actually used.
        assert set(out) == {"counters", "times"}
        assert list(out["counters"]) == ["alpha", "zeta"]
        assert list(out["times"]) == ["early", "late"]

    def test_to_dict_gains_keys_when_used(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1)
        reg.observe("h", 1.0)
        out = reg.to_dict()
        assert out["gauges"] == {"g": 1.0}
        assert out["histograms"]["h"]["count"] == 1

    def test_items_order(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        reg.add_time("z", 1.0)
        reg.add_time("y", 2.0)
        assert [k for k, _ in reg.items()] == ["a", "b", "y", "z"]


class TestMetricsAdapter:
    def test_adapter_and_registry_share_storage(self):
        metrics = Metrics()
        metrics.inc("k")
        metrics.registry.counter("k").inc()
        assert metrics.count("k") == 2

    def test_adapter_histogram_access(self):
        metrics = Metrics()
        assert metrics.histogram("lat") is None  # no creation on read
        for v in (1.0, 2.0, 3.0):
            metrics.observe("lat", v)
        assert metrics.histogram("lat").count == 3
        assert metrics.percentile("lat", 50.0) == 2.0

    def test_adapter_diff_roundtrip(self):
        metrics = Metrics()
        metrics.inc("k", 3)
        before = metrics.snapshot()
        metrics.inc("k", 4)
        metrics.observe("lat", 0.5)
        delta = metrics.diff(before)
        assert delta.count("k") == 4
        assert delta.histogram("lat").count == 1
