"""Span tracer: nesting, attributes, sim spans, and the disabled path."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    assert obs.active() is None, "a test leaked an active tracer"


def make_tracer():
    """Deterministic tracer: each clock read advances by 1s."""
    ticks = iter(range(10_000))
    return obs.Tracer(trace_id="trace-test", clock=lambda: float(next(ticks)))


class TestHostSpans:
    def test_nesting_links_parent_ids(self):
        tracer = make_tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        outer = tracer.find("outer")[0]
        middle = tracer.find("middle")[0]
        inner = tracer.find("inner")[0]
        assert outer.parent_id == -1
        assert middle.parent_id == outer.span_id
        assert inner.parent_id == middle.span_id
        assert tracer.children(outer) == [middle]
        assert tracer.children(middle) == [inner]

    def test_siblings_share_a_parent(self):
        tracer = make_tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        parent = tracer.find("parent")[0]
        assert [s.name for s in tracer.children(parent)] == ["a", "b"]

    def test_attrs_at_open_and_via_set(self):
        tracer = make_tracer()
        with tracer.span("work", category="lp", m=5) as sp:
            sp.set(status="optimal", iterations=3)
        span = tracer.find("work")[0]
        assert span.category == "lp"
        assert span.attrs == {"m": 5, "status": "optimal", "iterations": 3}

    def test_durations_are_clock_deltas(self):
        tracer = make_tracer()
        with tracer.span("t"):
            pass
        span = tracer.find("t")[0]
        assert span.duration == pytest.approx(1.0)
        assert span.timeline == obs.HOST

    def test_exception_unwinds_stack(self):
        tracer = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        # Both spans closed despite the exception; a new root nests cleanly.
        with tracer.span("after"):
            pass
        assert tracer.find("after")[0].parent_id == -1

    def test_event_is_instant(self):
        tracer = make_tracer()
        with tracer.span("solve"):
            tracer.event("refactorize", m=7)
        event = tracer.find("refactorize")[0]
        assert event.duration == 0.0
        assert event.parent_id == tracer.find("solve")[0].span_id


class TestSimSpans:
    def test_sim_span_records_verbatim(self):
        tracer = make_tracer()
        span = tracer.sim_span("gemv", 1.5, 0.25, "gpu0", category="kernel", m=8)
        assert span.timeline == obs.SIM
        assert span.start == 1.5 and span.duration == 0.25
        assert span.track == "gpu0"
        assert span.attrs == {"m": 8}

    def test_parent_chaining(self):
        tracer = make_tracer()
        parent = tracer.sim_span("request", 0.0, 1.0, "req-0")
        child = tracer.sim_span("queue", 0.0, 0.4, "req-0", parent_id=parent.span_id)
        assert tracer.children(parent) == [child]


class TestGlobalTracer:
    def test_disabled_by_default(self):
        assert obs.active() is None
        handle = obs.span("anything")
        assert handle is obs.NULL_SPAN
        with handle as sp:
            sp.set(ignored=True)
        obs.event("also-ignored")  # must not raise

    def test_tracing_scope_installs_and_restores(self):
        with obs.tracing() as tracer:
            assert obs.active() is tracer
            with obs.span("scoped"):
                pass
        assert obs.active() is None
        assert len(tracer.find("scoped")) == 1

    def test_tracing_restores_previous_tracer(self):
        with obs.tracing() as outer:
            with obs.tracing() as inner:
                assert obs.active() is inner
            assert obs.active() is outer

    def test_enable_disable(self):
        tracer = obs.enable()
        try:
            assert obs.active() is tracer
        finally:
            obs.disable()
        assert obs.active() is None

    def test_trace_ids_unique(self):
        assert obs.next_trace_id() != obs.next_trace_id()


class TestInstrumentationIntegration:
    def test_mip_solve_produces_nested_tree(self):
        from repro.api import solve
        from repro.problems.knapsack import generate_knapsack

        with obs.tracing() as tracer:
            report = solve(generate_knapsack(8, seed=2))
        assert report.trace_id == tracer.trace_id
        root = tracer.find("mip.solve")[0]
        nodes = tracer.find("mip.node")
        assert nodes and all(s.parent_id == root.span_id for s in nodes)
        assert root.attrs["status"] == "optimal"
        # Node LPs nest under their node span.
        lp_spans = tracer.find("lp.solve") + tracer.find("lp.dual_resolve")
        node_ids = {s.span_id for s in nodes}
        assert lp_spans and any(s.parent_id in node_ids for s in lp_spans)

    def test_device_kernels_land_on_sim_timeline(self):
        from repro.device.gpu import Device
        from repro.device import kernels as K
        from repro.device.spec import V100

        with obs.tracing() as tracer:
            device = Device(V100)
            device._charge(K.gemv_kernel(64, 64), None)
            device.transfers.host_to_device(1024)
        kernel = tracer.find("gemv")[0]
        assert kernel.timeline == obs.SIM
        assert kernel.track == device.obs_track
        h2d = tracer.find("h2d")[0]
        assert h2d.attrs["nbytes"] == 1024

    def test_untraced_device_run_is_identical(self):
        from repro.device.gpu import Device
        from repro.device import kernels as K
        from repro.device.spec import V100

        def run():
            device = Device(V100)
            device._charge(K.gemv_kernel(64, 64), None)
            device._charge(K.trsv_kernel(64), None)
            return device.clock.now

        baseline = run()
        with obs.tracing():
            traced = run()
        assert run() == baseline  # disabled again afterwards
        assert traced == baseline  # tracing never perturbs simulated time
