"""Tests for metrics, reporting, config, and the error hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.config import DEFAULT_TOLERANCES, Config, SolverDefaults, Tolerances
from repro.metrics import Metrics
from repro.reporting import (
    format_bytes,
    format_seconds,
    format_value,
    render_metrics,
    render_series,
    render_table,
    sparkline,
)


class TestMetrics:
    def test_counters(self):
        m = Metrics()
        m.inc("a")
        m.inc("a", 4)
        assert m.count("a") == 5
        assert m.count("missing") == 0

    def test_times(self):
        m = Metrics()
        m.add_time("t", 1.5)
        m.add_time("t", 0.5)
        assert m.time("t") == pytest.approx(2.0)
        assert m.time("missing") == 0.0

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.inc("x", 2)
        b.inc("x", 3)
        b.add_time("t", 1.0)
        a.merge(b)
        assert a.count("x") == 5
        assert a.time("t") == 1.0

    def test_snapshot_diff(self):
        m = Metrics()
        m.inc("k", 10)
        before = m.snapshot()
        m.inc("k", 7)
        m.add_time("t", 2.0)
        delta = m.diff(before)
        assert delta.count("k") == 7
        assert delta.time("t") == 2.0
        # Snapshot unaffected by later changes.
        assert before.count("k") == 10

    def test_reset(self):
        m = Metrics()
        m.inc("x")
        m.reset()
        assert m.count("x") == 0

    def test_items_iterates_both(self):
        m = Metrics()
        m.inc("c")
        m.add_time("t", 1.0)
        keys = dict(m.items())
        assert set(keys) == {"c", "t"}

    def test_to_dict_structured_and_sorted(self):
        m = Metrics()
        m.inc("b", 2)
        m.inc("a")
        m.add_time("t", 0.5)
        data = m.to_dict()
        assert data == {"counters": {"a": 1, "b": 2}, "times": {"t": 0.5}}
        assert list(data["counters"]) == ["a", "b"]
        # Plain dict copies: mutating the view leaves the metrics alone.
        data["counters"]["a"] = 99
        assert m.count("a") == 1


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(12345) == "12,345"
        assert format_value(0.0) == "0"
        assert format_value(1.5e-9) == "1.500e-09"
        assert format_value("text") == "text"

    def test_format_seconds(self):
        assert format_seconds(0) == "0"
        assert format_seconds(1.5) == "1.5 s"
        assert "ms" in format_seconds(2e-3)
        assert "µs" in format_seconds(3e-6)
        assert "ns" in format_seconds(4e-9)

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2 KiB"
        assert "GiB" in format_bytes(3 * 1024**3)

    def test_render_table_aligns(self):
        text = render_table(["a", "bb"], [(1, 2), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # equal widths

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1, 1, 1]) == "▁▁▁"
        spark = sparkline([0, 5, 10])
        assert spark[0] == "▁" and spark[-1] == "█"

    def test_render_metrics_counts_and_times(self):
        m = Metrics()
        m.inc("serve.requests", 3)
        m.add_time("time.serve.device", 2e-3)
        text = render_metrics(m, title="stages")
        assert "stages" in text
        assert "serve.requests" in text and "3" in text
        assert "time.serve.device" in text and "ms" in text

    def test_render_metrics_prefix_filter(self):
        m = Metrics()
        m.inc("serve.requests")
        m.inc("kernels.total")
        text = render_metrics(m, prefix="serve.")
        assert "serve.requests" in text
        assert "kernels.total" not in text

    def test_render_series_contains_sparkline(self):
        text = render_series("x", [1, 2], [("y", [3.0, 9.0])])
        assert "y" in text and "█" in text

    def test_render_trace_rows(self):
        from repro.reporting import render_trace

        rows = [
            ("sim", "gemv", 12, 3e-3, 2.5e-4, 5e-4),
            ("host", "mip.solve", 1, 1.5, 1.5, 1.5),
        ]
        text = render_trace(rows, title="where the time went")
        assert "where the time went" in text
        assert "timeline" in text and "span" in text
        assert "gemv" in text and "3 ms" in text
        assert "mip.solve" in text and "1.5 s" in text

    def test_render_percentiles_reads_histograms(self):
        from repro.reporting import render_percentiles

        m = Metrics()
        for v in (1e-3, 2e-3, 3e-3, 4e-3):
            m.observe("serve.latency", v)
        text = render_percentiles(
            m, ["serve.latency", "serve.missing"], title="latency"
        )
        assert "latency" in text
        assert "serve.latency" in text
        assert "p50" in text and "p95" in text and "p99" in text
        assert "serve.missing" not in text  # missing histograms are skipped


class TestConfig:
    def test_integrality_check(self):
        assert DEFAULT_TOLERANCES.is_integral(2.0 + 1e-9)
        assert not DEFAULT_TOLERANCES.is_integral(2.3)

    def test_simplex_limit_scales(self):
        d = SolverDefaults()
        assert d.simplex_iter_limit(100, 100) > d.simplex_iter_limit(1, 1)

    def test_tolerances_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_TOLERANCES.feasibility = 1.0

    def test_config_defaults(self):
        cfg = Config()
        assert isinstance(cfg.tolerances, Tolerances)
        assert cfg.seed == 0


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.SingularMatrixError, errors.LinearAlgebraError)
        assert issubclass(errors.LinearAlgebraError, errors.ReproError)
        assert issubclass(errors.DeviceMemoryError, errors.DeviceError)
        assert issubclass(errors.DeadlockError, errors.CommError)
        assert issubclass(errors.MIPError, errors.SolverError)
        assert issubclass(errors.ServiceSaturated, errors.ServiceError)
        assert issubclass(errors.RequestTimeout, errors.ServiceError)
        assert issubclass(errors.ServiceClosed, errors.ServiceError)
        assert issubclass(errors.ServiceError, errors.ReproError)

    def test_service_error_fields(self):
        saturated = errors.ServiceSaturated(12, 8)
        assert saturated.queue_depth == 12 and saturated.limit == 8
        timeout = errors.RequestTimeout(3, 0.25)
        assert timeout.request_id == 3 and "0.25" in str(timeout)

    def test_device_memory_error_fields(self):
        err = errors.DeviceMemoryError(100, 40, 200)
        assert err.requested == 100
        assert err.free == 40
        assert "100 B" in str(err)

    def test_iteration_limit_fields(self):
        err = errors.IterationLimitError("simplex", 500)
        assert "simplex" in str(err) and "500" in str(err)

    def test_catch_all_library_errors(self):
        with pytest.raises(errors.ReproError):
            raise errors.SparseFormatError("bad")
