"""Property-based checkpoint round-trips: save→load→save is byte-identical
and resuming an interrupted search reaches the uninterrupted optimum."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mip.checkpoint import load_snapshot, save_snapshot
from repro.mip.snapshot import SearchSnapshot, capture_snapshot, resume_from_snapshot
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.random_mip import generate_random_mip

settings.register_profile("ci", deadline=None, max_examples=30)
settings.load_profile("ci")

bound_floats = st.one_of(
    st.floats(min_value=-8.0, max_value=8.0, allow_nan=False),
    st.just(-np.inf),
    st.just(np.inf),
)


@st.composite
def snapshots(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    num_leaves = draw(st.integers(min_value=0, max_value=4))
    leaves = []
    for _ in range(num_leaves):
        lo = np.array(draw(st.lists(bound_floats, min_size=n, max_size=n)))
        hi = np.array(draw(st.lists(bound_floats, min_size=n, max_size=n)))
        leaves.append((np.minimum(lo, hi), np.maximum(lo, hi)))
    has_incumbent = draw(st.booleans())
    if has_incumbent:
        x = np.array(
            draw(
                st.lists(
                    st.floats(min_value=-8.0, max_value=8.0, allow_nan=False),
                    min_size=n,
                    max_size=n,
                )
            )
        )
        obj = draw(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
        return SearchSnapshot(
            leaves=leaves, incumbent_objective=obj, incumbent_x=x
        )
    return SearchSnapshot(leaves=leaves)


class TestByteIdenticalRoundTrip:
    @given(snap=snapshots())
    def test_save_load_save_is_byte_identical(self, snap, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("ckpt")
        first = str(tmp / "first.json")
        second = str(tmp / "second.json")
        save_snapshot(snap, first)
        save_snapshot(load_snapshot(first), second)
        with open(first, "rb") as fh:
            original = fh.read()
        with open(second, "rb") as fh:
            rewritten = fh.read()
        assert original == rewritten

    @given(snap=snapshots())
    def test_load_recovers_exact_values(self, snap, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("ckpt")
        path = str(tmp / "snap.json")
        save_snapshot(snap, path)
        loaded = load_snapshot(path)
        assert loaded.num_leaves == snap.num_leaves
        for (lb, ub), (lb2, ub2) in zip(snap.leaves, loaded.leaves):
            np.testing.assert_array_equal(lb, lb2)
            np.testing.assert_array_equal(ub, ub2)
        if snap.incumbent_x is None:
            assert loaded.incumbent_x is None
        else:
            np.testing.assert_array_equal(snap.incumbent_x, loaded.incumbent_x)
            assert loaded.incumbent_objective == snap.incumbent_objective


class TestResumeReachesSameIncumbent:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("node_limit", [2, 5])
    def test_interrupted_solve_resumes_to_full_optimum(
        self, seed, node_limit, tmp_path
    ):
        problem = generate_random_mip(7, 5, seed=seed, density=0.8)
        full = BranchAndBoundSolver(problem, SolverOptions()).solve()
        assert full.ok

        partial = BranchAndBoundSolver(
            problem, SolverOptions(node_limit=node_limit, keep_tree=True)
        ).solve()
        incumbent = partial.objective if partial.x is not None else -np.inf
        snap = capture_snapshot(
            partial.tree, incumbent_objective=incumbent, incumbent_x=partial.x
        )
        path = str(tmp_path / f"s{seed}-{node_limit}.json")
        save_snapshot(snap, path)

        resumed = resume_from_snapshot(problem, load_snapshot(path))
        assert resumed.objective == pytest.approx(full.objective, rel=1e-9)
