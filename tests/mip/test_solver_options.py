"""Root probing and logging integration in the branch-and-cut driver."""

import numpy as np
import pytest

from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.setcover import generate_set_cover


class TestProbeRoot:
    def test_probing_preserves_optimum(self):
        p = generate_set_cover(8, 16, seed=3)
        plain = BranchAndBoundSolver(p, SolverOptions()).solve()
        probed = BranchAndBoundSolver(p, SolverOptions(probe_root=True)).solve()
        assert probed.status is MIPStatus.OPTIMAL
        assert probed.objective == pytest.approx(plain.objective, abs=1e-6)

    def test_probing_detects_root_infeasibility(self):
        p = MIPProblem(
            c=[1.0],
            integer=np.array([True]),
            a_ub=[[1.0], [-1.0]],
            b_ub=[0.4, -0.6],
            ub=[1.0],
        )
        res = BranchAndBoundSolver(p, SolverOptions(probe_root=True)).solve()
        assert res.status is MIPStatus.INFEASIBLE
        # Probing proves it without a single LP.
        assert res.stats.nodes_processed == 0

    def test_probing_fixes_forced_variables(self):
        # x0 >= 1 (binary) forces x1 = 0 via x0 + x1 <= 1.
        p = MIPProblem(
            c=[2.0, 1.0],
            integer=np.array([True, True]),
            a_ub=[[1.0, 1.0], [-1.0, 0.0]],
            b_ub=[1.0, -1.0],
            ub=np.ones(2),
        )
        solver = BranchAndBoundSolver(p, SolverOptions(probe_root=True))
        res = solver.solve()
        assert res.objective == pytest.approx(2.0)
        assert solver.problem.ub[1] == 0.0  # tightened by probing


class TestLogging:
    def test_log_lines_emitted(self):
        lines = []
        p = generate_set_cover(10, 20, seed=1)
        BranchAndBoundSolver(
            p, SolverOptions(log_every=1, log_fn=lines.append)
        ).solve()
        assert lines
        assert all("nodes=" in line and "bound=" in line for line in lines)

    def test_silent_by_default(self):
        lines = []
        p = generate_set_cover(8, 16, seed=2)
        BranchAndBoundSolver(
            p, SolverOptions(log_fn=lines.append)
        ).solve()
        assert lines == []

    def test_log_interval_respected(self):
        every1, every5 = [], []
        p = generate_set_cover(10, 20, seed=4)
        BranchAndBoundSolver(
            p, SolverOptions(log_every=1, log_fn=every1.append)
        ).solve()
        BranchAndBoundSolver(
            p, SolverOptions(log_every=5, log_fn=every5.append)
        ).solve()
        assert len(every5) <= len(every1) // 4 + 1
