"""Tree bookkeeping, Figure-1 tags, and consistent-snapshot invariants."""

import numpy as np
import pytest

from repro.errors import MIPError
from repro.lp.problem import LinearProgram
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.snapshot import (
    SearchSnapshot,
    assert_search_complete,
    capture_snapshot,
    resume_from_snapshot,
)
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.mip.tree import BBTree, BoundChange, NodeTag
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal


def small_lp():
    return LinearProgram(c=[1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[3.0], ub=[2.0, 2.0])


class TestBBTree:
    def test_root(self):
        tree = BBTree(small_lp())
        assert tree.root.node_id == 0
        assert tree.root.depth == 0
        assert tree.size == 1
        assert tree.root.tag is NodeTag.ACTIVE

    def test_add_children_and_bounds(self):
        tree = BBTree(small_lp())
        down = tree.add_child(0, BoundChange(var=0, kind="ub", value=1.0))
        up = tree.add_child(0, BoundChange(var=0, kind="lb", value=2.0))
        assert down.depth == 1 and up.depth == 1
        lb, ub = tree.node_bounds(down.node_id)
        assert ub[0] == 1.0 and lb[0] == 0.0
        lb, ub = tree.node_bounds(up.node_id)
        assert lb[0] == 2.0

    def test_nested_bounds_tighten(self):
        tree = BBTree(small_lp())
        a = tree.add_child(0, BoundChange(var=0, kind="ub", value=1.0))
        b = tree.add_child(a.node_id, BoundChange(var=0, kind="ub", value=2.0))
        _, ub = tree.node_bounds(b.node_id)
        assert ub[0] == 1.0  # cannot loosen the ancestor's bound

    def test_node_problem_reflects_bounds(self):
        tree = BBTree(small_lp())
        child = tree.add_child(0, BoundChange(var=1, kind="lb", value=1.0))
        lp = tree.node_problem(child.node_id)
        assert lp.lb[1] == 1.0

    def test_tree_distance(self):
        tree = BBTree(small_lp())
        a = tree.add_child(0, BoundChange(var=0, kind="ub", value=1.0))
        b = tree.add_child(0, BoundChange(var=0, kind="lb", value=2.0))
        c = tree.add_child(a.node_id, BoundChange(var=1, kind="ub", value=0.0))
        assert tree.tree_distance(a.node_id, a.node_id) == 0
        assert tree.tree_distance(0, a.node_id) == 1
        assert tree.tree_distance(a.node_id, b.node_id) == 2
        assert tree.tree_distance(c.node_id, b.node_id) == 3

    def test_unknown_node_raises(self):
        tree = BBTree(small_lp())
        with pytest.raises(MIPError):
            tree.node(99)

    def test_render_shows_tags(self):
        tree = BBTree(small_lp())
        child = tree.add_child(0, BoundChange(var=0, kind="ub", value=1.0))
        child.tag = NodeTag.FEASIBLE
        text = tree.render()
        assert "n0" in text and "feasible" in text and "x0 ≤ 1" in text

    def test_assert_search_complete_raises_on_active(self):
        tree = BBTree(small_lp())
        with pytest.raises(MIPError, match="still active"):
            assert_search_complete(tree)


class TestSnapshots:
    def _partial_search_tree(self, node_limit):
        p = generate_knapsack(16, seed=4)
        solver = BranchAndBoundSolver(
            p, SolverOptions(node_limit=node_limit, keep_tree=True)
        )
        res = solver.solve()
        return p, res

    def test_trivial_snapshot_is_root(self):
        p = generate_knapsack(8, seed=0)
        from repro.mip.tree import BBTree

        tree = BBTree(p.relaxation())
        snap = capture_snapshot(tree)
        assert snap.num_leaves == 1  # "the root node alone" (paper §2.1)

    @pytest.mark.parametrize("node_limit", [1, 3, 7, 15])
    def test_restart_preserves_optimum(self, node_limit):
        """Paper §2.1: any consistent snapshot preserves the optimum."""
        p, partial = self._partial_search_tree(node_limit)
        expected, _ = knapsack_dp_optimal(p)
        incumbent = partial.objective if partial.x is not None else -np.inf
        snap = capture_snapshot(
            partial.tree, incumbent_objective=incumbent, incumbent_x=partial.x
        )
        resumed = resume_from_snapshot(p, snap)
        assert resumed.status is MIPStatus.OPTIMAL
        assert resumed.objective == pytest.approx(expected)

    def test_completed_search_snapshot_empty(self):
        p, res = self._partial_search_tree(node_limit=10_000)
        assert res.status is MIPStatus.OPTIMAL
        snap = capture_snapshot(res.tree)
        assert snap.num_leaves == 0  # all leaves terminal

    def test_snapshot_array_roundtrip(self):
        p, partial = self._partial_search_tree(node_limit=5)
        snap = capture_snapshot(partial.tree, incumbent_objective=1.0)
        lbs, ubs = snap.to_arrays()
        rebuilt = SearchSnapshot.from_arrays(lbs, ubs, 1.0)
        assert rebuilt.num_leaves == snap.num_leaves
        for (a_lb, a_ub), (b_lb, b_ub) in zip(snap.leaves, rebuilt.leaves):
            np.testing.assert_array_equal(a_lb, b_lb)
            np.testing.assert_array_equal(a_ub, b_ub)
