"""Cut validity and separation tests.

The crucial property: every generated cut is satisfied by EVERY feasible
mixed-integer point (validity) and violated by the fractional LP optimum
(usefulness).
"""

import itertools

import numpy as np
import pytest

from repro.lp.result import LPStatus
from repro.lp.simplex import solve_standard_form
from repro.mip.cuts.cover import cover_cuts
from repro.mip.cuts.gomory import gomory_mixed_integer_cuts, standard_integer_mask
from repro.mip.cuts.pool import Cut, CutPool
from repro.mip.problem import MIPProblem
from repro.problems.knapsack import generate_knapsack


def all_feasible_binary_points(problem: MIPProblem):
    for bits in itertools.product([0.0, 1.0], repeat=problem.n):
        x = np.array(bits)
        if problem.is_feasible(x):
            yield x


def standard_point_from_original(sf, x, lp):
    """Lift an original-space feasible point into standard-form coords."""
    n_std = sf.n
    x_std = np.zeros(n_std)
    for i in range(len(x)):
        x_std[sf.pos_col[i]] = x[i] - sf.shift[i]
        if sf.neg_col[i] >= 0 and x[i] - sf.shift[i] < 0:
            x_std[sf.pos_col[i]] = 0.0
            x_std[sf.neg_col[i]] = -(x[i] - sf.shift[i])
    # Slacks make every row tight: s = b - A_struct @ x_struct.
    residual = sf.b - sf.a[:, : sf.num_structural] @ x_std[: sf.num_structural]
    x_std[sf.num_structural :] = residual
    return x_std


class TestGomoryCuts:
    @pytest.mark.parametrize("seed", range(6))
    def test_cuts_valid_for_all_integer_points(self, seed):
        p = generate_knapsack(8, seed=seed)
        sf = p.relaxation().to_standard_form()
        res = solve_standard_form(sf)
        assert res.status is LPStatus.OPTIMAL
        cuts = gomory_mixed_integer_cuts(p, sf, res.basis, res.x_standard)
        if not cuts:
            pytest.skip("LP optimum already integral for this seed")
        for cut in cuts:
            # Violated by the LP optimum...
            assert float(cut.row @ res.x_standard) > cut.rhs + 1e-8
            # ...but satisfied by every feasible integer point.
            for x in all_feasible_binary_points(p):
                x_std = standard_point_from_original(sf, x, p)
                assert float(cut.row @ x_std) <= cut.rhs + 1e-6, (
                    f"cut {cut.source} kills feasible point {x}"
                )

    def test_integer_mask_structural_only(self):
        p = generate_knapsack(5, seed=0)
        sf = p.relaxation().to_standard_form()
        mask = standard_integer_mask(p, sf)
        assert mask[: sf.num_structural].all()
        assert not mask[sf.num_structural :].any()

    def test_no_cuts_from_integral_solution(self):
        p = MIPProblem(
            c=[1.0],
            integer=np.array([True]),
            a_ub=[[1.0]],
            b_ub=[2.0],
            ub=[5.0],
        )
        sf = p.relaxation().to_standard_form()
        res = solve_standard_form(sf)
        cuts = gomory_mixed_integer_cuts(p, sf, res.basis, res.x_standard)
        assert cuts == []


class TestCoverCuts:
    def test_separates_fractional_knapsack_point(self):
        # Knapsack 3x1 + 3x2 + 3x3 <= 5: cover {1,2} etc.
        p = MIPProblem(
            c=[1.0, 1.0, 1.0],
            integer=np.ones(3, dtype=bool),
            a_ub=[[3.0, 3.0, 3.0]],
            b_ub=[5.0],
            ub=np.ones(3),
        )
        sf = p.relaxation().to_standard_form()
        x = np.array([1.0, 0.9, 0.0])  # violates x1 + x2 <= 1
        cuts = cover_cuts(p, sf, x)
        assert cuts
        assert cuts[0].source == "cover"
        # Validity over all feasible binary points.
        for point in all_feasible_binary_points(p):
            x_std = standard_point_from_original(sf, point, p)
            for cut in cuts:
                assert float(cut.row @ x_std) <= cut.rhs + 1e-9

    def test_no_cut_when_point_respects_covers(self):
        p = MIPProblem(
            c=[1.0, 1.0],
            integer=np.ones(2, dtype=bool),
            a_ub=[[3.0, 3.0]],
            b_ub=[5.0],
            ub=np.ones(2),
        )
        sf = p.relaxation().to_standard_form()
        cuts = cover_cuts(p, sf, np.array([0.5, 0.4]))
        assert cuts == []

    def test_skips_non_binary_rows(self):
        p = MIPProblem(
            c=[1.0, 1.0],
            integer=np.array([True, False]),  # second var continuous
            a_ub=[[3.0, 3.0]],
            b_ub=[5.0],
            ub=[1.0, 1.0],
        )
        sf = p.relaxation().to_standard_form()
        assert cover_cuts(p, sf, np.array([1.0, 0.9])) == []


class TestCutPool:
    def _cut(self, coeffs, rhs, violation, source="t"):
        return Cut(np.array(coeffs, dtype=float), rhs, violation, source)

    def test_dedupe_by_scaling(self):
        pool = CutPool()
        assert pool.add(self._cut([1.0, 2.0], 3.0, 0.5))
        assert not pool.add(self._cut([2.0, 4.0], 6.0, 0.7))  # same cut ×2
        assert len(pool) == 1

    def test_select_by_violation(self):
        pool = CutPool()
        pool.add(self._cut([1.0, 0.0], 1.0, 0.1, "a"))
        pool.add(self._cut([0.0, 1.0], 1.0, 0.9, "b"))
        pool.add(self._cut([1.0, 1.0], 1.0, 0.5, "c"))
        chosen = pool.select(2)
        assert [c.source for c in chosen] == ["b", "c"]
        assert len(pool) == 1

    def test_min_violation_filter(self):
        pool = CutPool()
        pool.add(self._cut([1.0], 1.0, 1e-9))
        assert pool.select(5) == []

    def test_pool_cap(self):
        pool = CutPool(max_pool=2)
        assert pool.add(self._cut([1.0, 0.0], 1.0, 0.1))
        assert pool.add(self._cut([0.0, 1.0], 1.0, 0.1))
        assert not pool.add(self._cut([1.0, 1.0], 1.0, 0.1))
