"""Branch-and-bound solver correctness against exact oracles."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.problems.random_mip import generate_random_mip
from repro.problems.setcover import generate_set_cover


def brute_force_binary(problem: MIPProblem) -> float:
    """Enumerate all 0/1 points of a pure-binary problem (oracle)."""
    best = -np.inf
    n = problem.n
    for bits in itertools.product([0.0, 1.0], repeat=n):
        x = np.array(bits)
        if problem.is_feasible(x):
            best = max(best, problem.objective(x))
    return best


def solve(problem, **kw):
    return BranchAndBoundSolver(problem, SolverOptions(**kw)).solve()


class TestTiny:
    def test_trivial_integral_root(self):
        # LP optimum is already integral.
        p = MIPProblem(
            c=[1.0, 1.0],
            integer=np.array([True, True]),
            a_ub=[[1.0, 0.0], [0.0, 1.0]],
            b_ub=[2.0, 3.0],
            ub=[5.0, 5.0],
        )
        res = solve(p)
        assert res.status is MIPStatus.OPTIMAL
        assert res.objective == pytest.approx(5.0)

    def test_branching_required(self):
        # max x st 2x <= 3, x integer -> x = 1.
        p = MIPProblem(
            c=[1.0], integer=np.array([True]), a_ub=[[2.0]], b_ub=[3.0], ub=[5.0]
        )
        res = solve(p)
        assert res.objective == pytest.approx(1.0)
        assert res.x[0] == pytest.approx(1.0)

    def test_infeasible_mip(self):
        # 0.5 <= x <= 0.7, x integer.
        p = MIPProblem(
            c=[1.0],
            integer=np.array([True]),
            a_ub=[[1.0], [-1.0]],
            b_ub=[0.7, -0.5],
            ub=[1.0],
        )
        res = solve(p)
        assert res.status is MIPStatus.INFEASIBLE

    def test_mixed_integer_continuous(self):
        # y continuous rides on integer x: max x + y st x + y <= 2.5, x int.
        p = MIPProblem(
            c=[1.0, 1.0],
            integer=np.array([True, False]),
            a_ub=[[1.0, 1.0]],
            b_ub=[2.5],
            ub=[10.0, 10.0],
        )
        res = solve(p)
        assert res.objective == pytest.approx(2.5)
        assert res.x[0] == pytest.approx(round(res.x[0]))

    def test_node_limit_status(self):
        p = generate_knapsack(30, seed=5, correlation="strong")
        res = solve(p, node_limit=3)
        assert res.status is MIPStatus.NODE_LIMIT
        assert res.best_bound >= res.objective - 1e-9 or np.isnan(res.objective)

    def test_keep_tree_and_figure1_invariant(self):
        from repro.mip.snapshot import assert_search_complete
        from repro.mip.tree import NodeTag

        # Heuristics off so the incumbent is discovered at a FEASIBLE leaf.
        p = generate_knapsack(10, seed=1)
        res = solve(p, keep_tree=True, use_rounding_heuristic=False)
        assert res.tree is not None
        assert_search_complete(res.tree)  # no ACTIVE nodes at completion
        counts = res.tree.tag_counts()
        assert counts[NodeTag.ACTIVE] == 0
        assert counts[NodeTag.FEASIBLE] >= 1


class TestKnapsackOracle:
    @pytest.mark.parametrize("n,seed", [(8, 0), (10, 1), (12, 2), (15, 3), (18, 4)])
    def test_matches_dp(self, n, seed):
        p = generate_knapsack(n, seed=seed)
        expected, _ = knapsack_dp_optimal(p)
        res = solve(p)
        assert res.status is MIPStatus.OPTIMAL
        assert res.objective == pytest.approx(expected)
        assert p.is_feasible(res.x)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_strongly_correlated(self, seed):
        p = generate_knapsack(12, seed=seed, correlation="strong")
        expected, _ = knapsack_dp_optimal(p)
        res = solve(p)
        assert res.objective == pytest.approx(expected)


class TestBruteForceOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_binary_mips(self, seed):
        rng = np.random.default_rng(seed)
        n = 7
        p = MIPProblem(
            c=rng.standard_normal(n) * 5,
            integer=np.ones(n, dtype=bool),
            a_ub=rng.standard_normal((4, n)),
            b_ub=rng.random(4) * 3 + 1,
            lb=np.zeros(n),
            ub=np.ones(n),
        )
        expected = brute_force_binary(p)
        res = solve(p)
        if np.isinf(expected):
            assert res.status is MIPStatus.INFEASIBLE
        else:
            assert res.objective == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_set_cover(self, seed):
        p = generate_set_cover(6, 10, seed=seed)
        expected = brute_force_binary(p)
        res = solve(p)
        assert res.objective == pytest.approx(expected, abs=1e-6)


class TestOptionsMatrix:
    @pytest.mark.parametrize("branching", ["most_fractional", "pseudocost", "strong"])
    @pytest.mark.parametrize(
        "selection", ["best_first", "depth_first", "hybrid", "gpu_locality"]
    )
    def test_every_combination_agrees(self, branching, selection):
        p = generate_knapsack(12, seed=9)
        expected, _ = knapsack_dp_optimal(p)
        res = solve(p, branching=branching, node_selection=selection)
        assert res.status is MIPStatus.OPTIMAL
        assert res.objective == pytest.approx(expected)

    def test_cuts_do_not_change_answer(self):
        p = generate_knapsack(14, seed=3)
        expected, _ = knapsack_dp_optimal(p)
        res = solve(p, cut_rounds=3, cuts_per_round=4)
        assert res.objective == pytest.approx(expected)

    def test_cuts_reduce_nodes_on_knapsack(self):
        p = generate_knapsack(14, seed=3)
        plain = solve(p, cut_rounds=0)
        cutting = solve(p, cut_rounds=3)
        assert cutting.objective == pytest.approx(plain.objective, abs=1e-6)
        assert cutting.stats.cuts_added > 0
        assert cutting.stats.nodes_processed <= plain.stats.nodes_processed

    def test_warm_start_agrees_with_cold(self):
        p = generate_knapsack(14, seed=8)
        warm = solve(p, warm_start=True)
        cold = solve(p, warm_start=False)
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.stats.warm_starts > 0
        assert cold.stats.warm_starts == 0

    def test_heuristic_counts(self):
        p = generate_knapsack(16, seed=2)
        res = solve(p, use_rounding_heuristic=True)
        assert res.status is MIPStatus.OPTIMAL

    def test_mixed_random_mip_solves(self):
        p = generate_random_mip(8, 5, seed=3, integer_fraction=0.5, bound=4.0)
        res = solve(p)
        assert res.status is MIPStatus.OPTIMAL
        assert p.is_feasible(res.x)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=2, max_value=6),
)
def test_property_binary_mip_matches_brute_force(seed, n):
    """Any small random binary MIP agrees with exhaustive enumeration."""
    rng = np.random.default_rng(seed)
    p = MIPProblem(
        c=rng.standard_normal(n) * 3,
        integer=np.ones(n, dtype=bool),
        a_ub=rng.standard_normal((3, n)),
        b_ub=rng.random(3) * 2 + 0.5,
        lb=np.zeros(n),
        ub=np.ones(n),
    )
    expected = brute_force_binary(p)
    res = solve(p)
    if np.isinf(expected):
        assert res.status is MIPStatus.INFEASIBLE
    else:
        assert res.objective == pytest.approx(expected, abs=1e-6)
        assert p.is_feasible(res.x)
