"""MIR cut validity and separation tests."""

import itertools

import numpy as np
import pytest

from repro.lp.simplex import solve_lp
from repro.mip.cuts.mir import mir_cuts
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.random_mip import generate_random_mip
from repro.problems.unit_commitment import generate_unit_commitment


def all_feasible_points(problem, grid):
    """Enumerate integer grids for the integer vars, LP-check the rest."""
    int_idx = np.nonzero(problem.integer)[0]
    cont_idx = np.nonzero(~problem.integer)[0]
    for combo in itertools.product(*[grid[j] for j in int_idx]):
        x = np.zeros(problem.n)
        x[int_idx] = combo
        feasible = True
        if cont_idx.size == 0:
            if problem.is_feasible(x):
                yield x
            continue
        # For mixed problems: continuous parts at a few corners.
        for cvals in itertools.product(
            *[(problem.lb[j], problem.ub[j]) for j in cont_idx]
        ):
            x2 = x.copy()
            x2[cont_idx] = cvals
            if problem.is_feasible(x2):
                yield x2


def lift_to_standard(sf, x):
    x_std = np.zeros(sf.n)
    for i in range(len(x)):
        x_std[sf.pos_col[i]] = x[i] - sf.shift[i]
    residual = sf.b - sf.a[:, : sf.num_structural] @ x_std[: sf.num_structural]
    x_std[sf.num_structural :] = residual
    return x_std


class TestMIRValidity:
    @pytest.mark.parametrize("seed", range(5))
    def test_valid_for_all_integer_points(self, seed):
        p = MIPProblem(
            c=np.random.default_rng(seed).standard_normal(4),
            integer=np.ones(4, dtype=bool),
            a_ub=np.random.default_rng(seed + 50).uniform(0.3, 3.0, (3, 4)),
            b_ub=np.random.default_rng(seed + 99).uniform(3.0, 8.0, 3),
            lb=np.zeros(4),
            ub=np.full(4, 3.0),
        )
        res = solve_lp(p.relaxation())
        if not res.ok:
            pytest.skip("relaxation unbounded/infeasible")
        sf = p.relaxation().to_standard_form()
        cuts = mir_cuts(p, sf, res.x)
        if not cuts:
            pytest.skip("no violated MIR cut at this optimum")
        grid = {j: np.arange(0, 4.0) for j in range(4)}
        points = list(all_feasible_points(p, grid))
        assert points
        for cut in cuts:
            for x in points:
                x_std = lift_to_standard(sf, x)
                assert float(cut.row @ x_std) <= cut.rhs + 1e-6, (
                    f"MIR cut kills feasible point {x}"
                )

    def test_mixed_row_with_continuous(self):
        # 2.5 x0 + 1.5 x1 - y <= 3.6, x int in [0,3], y in [0,2].
        p = MIPProblem(
            c=[1.0, 1.0, 0.1],
            integer=np.array([True, True, False]),
            a_ub=[[2.5, 1.5, -1.0]],
            b_ub=[3.6],
            lb=np.zeros(3),
            ub=[3.0, 3.0, 2.0],
        )
        res = solve_lp(p.relaxation())
        sf = p.relaxation().to_standard_form()
        cuts = mir_cuts(p, sf, res.x)
        grid = {0: np.arange(0, 4.0), 1: np.arange(0, 4.0)}
        for cut in cuts:
            for x in all_feasible_points(p, grid):
                x_std = lift_to_standard(sf, x)
                assert float(cut.row @ x_std) <= cut.rhs + 1e-6

    def test_cut_violated_by_generating_point(self):
        p = MIPProblem(
            c=[1.0],
            integer=np.array([True]),
            a_ub=[[2.0]],
            b_ub=[3.0],
            ub=[5.0],
        )
        res = solve_lp(p.relaxation())  # x = 1.5
        sf = p.relaxation().to_standard_form()
        cuts = mir_cuts(p, sf, res.x)
        assert cuts
        x_std = lift_to_standard(sf, res.x)
        for cut in cuts:
            assert float(cut.row @ x_std) > cut.rhs + 1e-7

    def test_integral_rhs_gives_no_cut(self):
        p = MIPProblem(
            c=[1.0],
            integer=np.array([True]),
            a_ub=[[1.0]],
            b_ub=[3.0],
            ub=[5.0],
        )
        sf = p.relaxation().to_standard_form()
        assert mir_cuts(p, sf, np.array([2.5])) == []


class TestMIRInSolver:
    def test_solver_with_mir_preserves_optimum(self):
        p = generate_random_mip(10, 6, seed=8, bound=4.0)
        plain = BranchAndBoundSolver(p, SolverOptions(cut_rounds=0)).solve()
        with_cuts = BranchAndBoundSolver(p, SolverOptions(cut_rounds=3)).solve()
        assert with_cuts.status is MIPStatus.OPTIMAL
        assert with_cuts.objective == pytest.approx(plain.objective, abs=1e-6)

    def test_unit_commitment_with_cuts(self):
        p = generate_unit_commitment(3, 2, seed=1)
        plain = BranchAndBoundSolver(p, SolverOptions(cut_rounds=0)).solve()
        with_cuts = BranchAndBoundSolver(p, SolverOptions(cut_rounds=2)).solve()
        assert with_cuts.objective == pytest.approx(plain.objective, abs=1e-6)
