"""Portfolio heuristics: certificates, determinism, the solve-mode API.

Covers the satellite contracts of the primal-heuristic portfolio:

- *property*: every incumbent the portfolio emits passes the
  exact-rational feasibility certificate (:mod:`repro.check`), for any
  generated instance — heuristics may miss solutions, never fake them;
- *determinism*: the same seed yields the same incumbent across repeat
  runs **and** across lockstep widths (``n_jobs``), so batch sizing is
  a pure performance knob;
- the :class:`repro.api.SolveMode` surface: option validation,
  ``heuristic_only`` reports with certified gaps, ``heuristic_first``
  seeding branch and bound, and the serving layer's separate heuristic
  cache/coalescing channel.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import SolveMode, SolveOptions, solve
from repro.check import certify_mip_solution
from repro.errors import ReproError, ServiceError
from repro.lp.problem import LinearProgram
from repro.mip.portfolio import (
    PortfolioOptions,
    propagate_bounds,
    run_portfolio,
)
from repro.mip.problem import MIPProblem
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.serve.request import Outcome
from repro.serve.service import SolveService

SMALL = PortfolioOptions(
    seed=1, restarts=8, n_jobs=4, fj_sweeps=40, lns_rounds=1, lns_node_limit=40
)


def integer_infeasible_mip() -> MIPProblem:
    """Feasible relaxation (x = 0.5), no integer point: 2x == 1, x binary."""
    return MIPProblem(
        c=np.array([1.0]),
        integer=np.array([True]),
        a_eq=np.array([[2.0]]),
        b_eq=np.array([1.0]),
        lb=np.array([0.0]),
        ub=np.array([1.0]),
    )


class TestIncumbentCertificates:
    @given(
        num_items=st.integers(min_value=6, max_value=14),
        seed=st.integers(min_value=0, max_value=10_000),
        corr=st.sampled_from(["uncorrelated", "weak", "strong"]),
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_every_incumbent_passes_exact_certificate(self, num_items, seed, corr):
        problem = generate_knapsack(num_items, seed=seed, correlation=corr)
        result = run_portfolio(problem, SMALL)
        for inc in result.incumbents:
            assert inc.certified
            assert problem.is_feasible(inc.x)
            cert = certify_mip_solution(problem, inc.x, objective=inc.objective)
            assert cert.ok
        if result.best is not None and np.isfinite(result.dual_bound):
            # Certified gap is one-sided: incumbent never beats the bound.
            assert result.best.objective <= result.dual_bound + 1e-6

    def test_incumbents_reach_dp_optimum_neighborhood(self):
        problem = generate_knapsack(25, seed=7, correlation="weak")
        result = run_portfolio(problem, PortfolioOptions(seed=0, restarts=16))
        assert result.best is not None
        optimum, _ = knapsack_dp_optimal(problem)
        assert result.best.objective <= optimum + 1e-9
        assert result.gap < 0.1

    def test_infeasible_integer_mip_yields_no_incumbent(self):
        result = run_portfolio(integer_infeasible_mip(), SMALL)
        assert result.best is None
        assert result.incumbents == []


class TestDeterminism:
    def test_same_seed_same_incumbents_across_runs(self):
        problem = generate_knapsack(30, seed=2, correlation="weak")
        opts = PortfolioOptions(seed=0, restarts=16, n_jobs=8)
        first = run_portfolio(problem, opts)
        second = run_portfolio(problem, opts)
        assert first.best is not None and second.best is not None
        assert first.best.objective == second.best.objective
        np.testing.assert_array_equal(first.best.x, second.best.x)
        trail = lambda r: [(i.heuristic, i.member, i.objective) for i in r.incumbents]
        assert trail(first) == trail(second)

    @pytest.mark.parametrize("n_jobs", [1, 4, 16])
    def test_incumbent_invariant_under_lockstep_width(self, n_jobs):
        problem = generate_knapsack(30, seed=2, correlation="weak")
        reference = run_portfolio(
            problem, PortfolioOptions(seed=0, restarts=16, n_jobs=8)
        )
        other = run_portfolio(
            problem, PortfolioOptions(seed=0, restarts=16, n_jobs=n_jobs)
        )
        assert other.best.objective == reference.best.objective
        assert other.best.heuristic == reference.best.heuristic
        assert other.best.member == reference.best.member
        np.testing.assert_array_equal(other.best.x, reference.best.x)


class TestPropagation:
    def test_propagation_tightens_and_detects_infeasibility(self):
        # x0 + x1 <= 1 with x0 fixed to 1 forces x1 <= 0.
        problem = MIPProblem(
            c=np.array([1.0, 1.0]),
            integer=np.array([True, True]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([1.0]),
            lb=np.array([0.0, 0.0]),
            ub=np.array([1.0, 1.0]),
        )
        lb = np.array([1.0, 0.0])
        ub = np.array([1.0, 1.0])
        new_lb, new_ub, feasible = propagate_bounds(problem, lb, ub)
        assert feasible
        assert new_ub[1] == 0.0
        # Fixing both to 1 contradicts the row.
        _, _, feasible = propagate_bounds(
            problem, np.array([1.0, 1.0]), np.array([1.0, 1.0])
        )
        assert not feasible


class TestSolveModeAPI:
    def test_mode_accepts_enum_and_string(self):
        assert SolveOptions(mode="heuristic_only").mode is SolveMode.HEURISTIC_ONLY
        assert SolveOptions(mode=SolveMode.EXACT).mode is SolveMode.EXACT

    def test_invalid_mode_and_gap_target_are_rejected(self):
        with pytest.raises(ReproError, match="valid modes"):
            SolveOptions(mode="bogus")
        with pytest.raises(ReproError, match="finite non-negative"):
            SolveOptions(mode="heuristic_only", gap_target=-0.5)
        with pytest.raises(ReproError, match="finite non-negative"):
            SolveOptions(mode="heuristic_only", gap_target=float("inf"))
        with pytest.raises(ReproError, match="heuristic_first"):
            SolveOptions(gap_target=0.1)  # exact mode

    def test_heuristic_only_without_gap_target_is_allowed(self):
        report = solve(
            generate_knapsack(15, seed=4),
            SolveOptions(mode="heuristic_only", portfolio=SMALL),
        )
        assert report.status == "heuristic"
        assert report.mode == "heuristic_only"

    def test_non_exact_mode_rejected_for_plain_lp(self):
        lp = LinearProgram(
            c=np.array([1.0]), a_ub=np.array([[1.0]]), b_ub=np.array([2.0])
        )
        with pytest.raises(ReproError, match="MIPs only"):
            solve(lp, SolveOptions(mode="heuristic_first"))

    def test_heuristic_only_report_carries_certified_gap(self):
        report = solve(
            generate_knapsack(20, seed=3),
            SolveOptions(mode="heuristic_only", gap_target=0.05),
        )
        assert report.status == "heuristic"
        assert np.isfinite(report.best_bound)
        assert np.isfinite(report.gap)
        summary = report.metrics["portfolio"]
        assert summary["incumbents"] >= 1
        assert summary["gap_target"] == 0.05
        assert isinstance(summary["gap_target_met"], bool)
        assert report.objective <= report.best_bound + 1e-6

    def test_heuristic_only_no_incumbent_status(self):
        report = solve(
            integer_infeasible_mip(),
            SolveOptions(mode="heuristic_only", portfolio=SMALL),
        )
        assert report.status == "no_incumbent"
        assert report.x is None

    def test_heuristic_first_seeds_branch_and_bound(self):
        problem = generate_knapsack(20, seed=3)
        report = solve(
            problem,
            SolveOptions(
                strategy="portfolio", mode="heuristic_first", gap_target=0.01
            ),
        )
        assert report.status == "optimal"
        assert report.mode == "heuristic_first"
        assert "portfolio" in report.metrics
        # The portfolio incumbent lands before any node is processed.
        assert report.result.stats.first_incumbent_nodes == 0
        assert report.result.stats.portfolio_incumbents >= 1

    def test_portfolio_strategy_registered_with_fallback(self):
        from repro.strategies import registry

        assert "portfolio" in registry.available_strategies()
        assert registry.fallback_for("portfolio") == "hybrid"


class TestBenchPayload:
    def test_tiny_corpus_payload_is_schema_valid(self, tmp_path):
        from repro.mip.portfolio_bench import portfolio_bench_payload
        from repro.obs.bench import load_bench_json, write_bench_json

        problem = generate_knapsack(20, seed=3, correlation="strong")
        problem.name = "knap-tiny"
        payload = portfolio_bench_payload(
            corpus=[(problem, True)],
            node_limit=300,
            portfolio=SMALL,
            include_pathological=False,
        )
        path = tmp_path / "BENCH_portfolio.json"
        write_bench_json(path, payload)
        loaded = load_bench_json(path)
        assert loaded["bench"] == "e16_portfolio"
        (row,) = loaded["rows"]
        assert row["certified"]
        assert row["portfolio_first_incumbent_seconds"] > 0
        summary = loaded["summary"]
        assert summary["gated_instances"] == 1
        assert summary["geomean_speedup"] == row["speedup"]
        assert summary["all_certified"]


class TestServingModes:
    def test_heuristic_channel_is_separate(self):
        service = SolveService(num_workers=2)
        problem = generate_knapsack(20, seed=3)
        h1 = service.submit(problem, at=0.0, mode="heuristic_only", gap_target=0.05)
        h2 = service.submit(problem, at=0.0, mode="heuristic_only", gap_target=0.05)
        exact = service.submit(problem, at=0.0)
        service.drain()
        # Same problem, different channels: the exact request neither
        # coalesces onto the heuristic primary nor reads its answer.
        assert service.result(h2).coalesced
        assert not service.result(exact).coalesced
        assert service.result(h1).mode == "heuristic_only"
        assert service.result(h1).solver_status == "heuristic"
        assert service.result(exact).mode == "exact"
        assert service.result(exact).solver_status == "optimal"
        assert np.isfinite(service.result(h1).gap)

        # Replays hit their own caches.
        h3 = service.submit(
            problem, at=service.now + 1.0, mode="heuristic_only", gap_target=0.05
        )
        e2 = service.submit(problem, at=service.now)
        service.close()
        assert service.result(h3).cached
        assert service.result(h3).mode == "heuristic_only"
        assert service.result(e2).cached
        assert service.result(e2).mode == "exact"
        assert service.metrics.count("serve.heuristic_hit") == 1

    def test_heuristic_only_never_writes_exact_cache(self):
        service = SolveService(num_workers=1)
        problem = generate_knapsack(15, seed=5)
        service.submit(problem, at=0.0, mode="heuristic_only")
        service.drain()
        assert len(service.cache) == 0
        assert len(service.heuristic_cache) == 1
        # A later exact request must dispatch a real solve.
        exact = service.submit(problem, at=service.now + 1.0)
        service.close()
        response = service.result(exact)
        assert not response.cached
        assert response.solver_status == "optimal"
        assert response.outcome is Outcome.OK

    def test_lp_rejects_heuristic_mode_at_admission(self):
        service = SolveService(num_workers=1)
        lp = LinearProgram(
            c=np.array([1.0]), a_ub=np.array([[1.0]]), b_ub=np.array([2.0])
        )
        with pytest.raises(ServiceError, match="MIPs only"):
            service.submit(lp, mode="heuristic_only")
        with pytest.raises(ServiceError, match="valid modes"):
            service.submit(generate_knapsack(6, seed=0), mode="fastish")
