"""Branching rules and node-selection policies."""

import numpy as np
import pytest

from repro.errors import MIPError
from repro.lp.problem import LinearProgram
from repro.mip.branching import (
    MostFractionalBranching,
    PseudocostBranching,
    StrongBranching,
    make_branching,
)
from repro.mip.node_selection import make_selector
from repro.mip.tree import BBTree, BoundChange


class TestMostFractional:
    def test_picks_nearest_half(self):
        rule = MostFractionalBranching()
        x = np.array([0.9, 0.5, 0.2])
        assert rule.select(np.array([0, 1, 2]), x, 10.0) == 1

    def test_empty_raises(self):
        with pytest.raises(MIPError):
            MostFractionalBranching().select(np.array([], dtype=int), np.zeros(1), 0.0)


class TestPseudocost:
    def test_unseen_vars_fall_back_to_global_average(self):
        rule = PseudocostBranching()
        x = np.array([0.5, 0.5])
        # Symmetric: returns some valid candidate.
        assert rule.select(np.array([0, 1]), x, 5.0) in (0, 1)

    def test_learned_costs_steer_selection(self):
        rule = PseudocostBranching()
        # Var 0 historically degrades the bound a lot in both directions.
        for _ in range(3):
            rule.record(0, "up", 0.5, 10.0)
            rule.record(0, "down", 0.5, 10.0)
            rule.record(1, "up", 0.5, 0.01)
            rule.record(1, "down", 0.5, 0.01)
        x = np.array([0.5, 0.5])
        assert rule.select(np.array([0, 1]), x, 5.0) == 0

    def test_bad_direction_raises(self):
        with pytest.raises(MIPError):
            PseudocostBranching().record(0, "sideways", 0.5, 1.0)


class TestStrong:
    def test_uses_probe_results(self):
        # Probe says branching on var 1 degrades both children most.
        def probe(var, lb, ub):
            return 10.0 - (5.0 if var == 1 else 0.5)

        rule = StrongBranching(max_candidates=2)
        x = np.array([0.5, 0.49])
        chosen = rule.select(np.array([0, 1]), x, 10.0, probe=probe)
        assert chosen == 1

    def test_without_probe_degrades_gracefully(self):
        rule = StrongBranching()
        x = np.array([0.5, 0.1])
        assert rule.select(np.array([0, 1]), x, 3.0) == 0


class TestFactories:
    def test_unknown_branching(self):
        with pytest.raises(ValueError):
            make_branching("nope")

    def test_unknown_selector(self):
        tree = BBTree(LinearProgram(c=[1.0], ub=[1.0]))
        with pytest.raises(ValueError):
            make_selector("nope", tree)


def build_tree():
    lp = LinearProgram(c=[1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[3.0], ub=[2.0, 2.0])
    return BBTree(lp)


class TestSelectors:
    def test_best_first_order(self):
        tree = build_tree()
        a = tree.add_child(0, BoundChange(0, "ub", 1.0))
        b = tree.add_child(0, BoundChange(0, "lb", 2.0))
        sel = make_selector("best_first", tree)
        sel.push(a.node_id, 5.0)
        sel.push(b.node_id, 9.0)
        assert sel.pop() == b.node_id  # higher bound first
        assert sel.pop() == a.node_id

    def test_depth_first_lifo(self):
        tree = build_tree()
        a = tree.add_child(0, BoundChange(0, "ub", 1.0))
        b = tree.add_child(0, BoundChange(0, "lb", 2.0))
        sel = make_selector("depth_first", tree)
        sel.push(a.node_id, 5.0)
        sel.push(b.node_id, 1.0)
        assert sel.pop() == b.node_id  # last pushed first

    def test_hybrid_prefers_depth_on_ties(self):
        tree = build_tree()
        shallow = tree.add_child(0, BoundChange(0, "ub", 1.0))
        deep = tree.add_child(shallow.node_id, BoundChange(1, "ub", 1.0))
        sel = make_selector("hybrid", tree)
        sel.push(shallow.node_id, 5.0)
        sel.push(deep.node_id, 5.0)
        assert sel.pop() == deep.node_id

    def test_gpu_locality_prefers_children(self):
        tree = build_tree()
        a = tree.add_child(0, BoundChange(0, "ub", 1.0))
        b = tree.add_child(0, BoundChange(0, "lb", 2.0))
        sel = make_selector("gpu_locality", tree)
        sel.push(0, 10.0)
        assert sel.pop() == 0
        # Children of node 0 beat the (better-bound) sibling subtree.
        a_child = a  # children of node 0 are a and b themselves
        sel.push(b.node_id, 99.0)
        sel.push(a_child.node_id, 1.0)
        first = sel.pop()
        assert first in (a.node_id, b.node_id)  # a child of the last node

    def test_empty_pop_raises(self):
        tree = build_tree()
        for name in ("best_first", "depth_first", "hybrid", "gpu_locality"):
            sel = make_selector(name, tree)
            with pytest.raises(MIPError):
                sel.pop()

    def test_len_and_bool(self):
        tree = build_tree()
        sel = make_selector("best_first", tree)
        assert not sel
        sel.push(0, 1.0)
        assert len(sel) == 1 and sel
