"""Structural invariants of every completed branch-and-bound tree.

Property-based formalization of the paper's Figure 1 semantics: a
completed search leaves a tree in which

- no node is ACTIVE (the paper's explicit completion condition);
- every BRANCHED node has exactly two children and a branch variable;
- every leaf carries a terminal tag (feasible / infeasible / pruned);
- a child's LP bound never exceeds its parent's (bounds tighten);
- bound changes along any path are consistent tightenings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.snapshot import assert_search_complete
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.mip.tree import NodeTag


def check_tree_invariants(tree, tol=1e-6, check_bound_monotone=True):
    # Bound monotonicity (child LP bound <= parent's) holds exactly only
    # without node-local cuts: a parent's recorded bound is its *with-cut*
    # value, which children (who do not inherit the cuts) may exceed.
    for node in tree.nodes():
        assert node.tag is not NodeTag.ACTIVE
        if node.tag is NodeTag.BRANCHED:
            assert len(node.children) == 2
            assert node.branch_var is not None
        else:
            assert node.children == []
            assert node.tag.is_leaf_terminal
        if node.parent_id is not None:
            parent = tree.node(node.parent_id)
            assert parent.tag is NodeTag.BRANCHED
            if (
                check_bound_monotone
                and np.isfinite(node.lp_bound)
                and np.isfinite(parent.lp_bound)
            ):
                assert node.lp_bound <= parent.lp_bound + tol
        # Bound boxes along the path are consistent.
        lb, ub = tree.node_bounds(node.node_id)
        assert np.all(lb <= ub + 1e-9)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=3, max_value=7),
    m=st.integers(min_value=2, max_value=4),
)
def test_property_completed_trees_satisfy_figure1(seed, n, m):
    rng = np.random.default_rng(seed)
    problem = MIPProblem(
        c=rng.standard_normal(n) * 3,
        integer=np.ones(n, dtype=bool),
        a_ub=rng.standard_normal((m, n)),
        b_ub=rng.random(m) * 3 + 0.5,
        lb=np.zeros(n),
        ub=np.full(n, 2.0),
    )
    result = BranchAndBoundSolver(
        problem, SolverOptions(keep_tree=True)
    ).solve()
    if result.status in (MIPStatus.OPTIMAL, MIPStatus.INFEASIBLE):
        assert_search_complete(result.tree)
        check_tree_invariants(result.tree)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_invariants_hold_with_cuts_and_policies(seed):
    rng = np.random.default_rng(seed)
    n = 5
    problem = MIPProblem(
        c=rng.standard_normal(n) * 3,
        integer=np.ones(n, dtype=bool),
        a_ub=rng.uniform(0.2, 2.0, (3, n)),
        b_ub=rng.random(3) * 4 + 1.0,
        lb=np.zeros(n),
        ub=np.ones(n),
    )
    policy = ["best_first", "depth_first", "hybrid", "gpu_locality"][seed % 4]
    result = BranchAndBoundSolver(
        problem,
        SolverOptions(keep_tree=True, cut_rounds=2, node_selection=policy),
    ).solve()
    if result.status in (MIPStatus.OPTIMAL, MIPStatus.INFEASIBLE):
        check_tree_invariants(result.tree, check_bound_monotone=False)
