"""Checkpoint save/load round-trip and cross-process restart tests."""

import numpy as np
import pytest

from repro.errors import MIPError
from repro.mip.checkpoint import load_snapshot, save_snapshot
from repro.mip.snapshot import SearchSnapshot, capture_snapshot, resume_from_snapshot
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal


class TestRoundTrip:
    def test_simple_roundtrip(self, tmp_path):
        snap = SearchSnapshot(
            leaves=[(np.array([0.0, 1.0]), np.array([2.0, 3.0]))],
            incumbent_objective=42.0,
            incumbent_x=np.array([1.0, 2.0]),
        )
        path = str(tmp_path / "ckpt.json")
        save_snapshot(snap, path)
        loaded = load_snapshot(path)
        assert loaded.incumbent_objective == 42.0
        np.testing.assert_array_equal(loaded.incumbent_x, [1.0, 2.0])
        np.testing.assert_array_equal(loaded.leaves[0][0], [0.0, 1.0])
        np.testing.assert_array_equal(loaded.leaves[0][1], [2.0, 3.0])

    def test_infinities_survive(self, tmp_path):
        snap = SearchSnapshot(
            leaves=[(np.array([-np.inf, 0.0]), np.array([np.inf, 1.0]))],
        )
        path = str(tmp_path / "ckpt.json")
        save_snapshot(snap, path)
        loaded = load_snapshot(path)
        assert loaded.incumbent_objective == -np.inf
        assert loaded.incumbent_x is None
        assert loaded.leaves[0][0][0] == -np.inf
        assert loaded.leaves[0][1][0] == np.inf

    def test_version_check(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            handle.write('{"version": 99, "leaves": []}')
        with pytest.raises(MIPError):
            load_snapshot(path)

    def test_empty_snapshot(self, tmp_path):
        snap = SearchSnapshot(leaves=[])
        path = str(tmp_path / "empty.json")
        save_snapshot(snap, path)
        assert load_snapshot(path).num_leaves == 0


class TestRestartFromDisk:
    def test_kill_save_load_resume(self, tmp_path):
        """Full UG-style cycle: interrupt, checkpoint to disk, restart."""
        problem = generate_knapsack(16, seed=4)
        expected, _ = knapsack_dp_optimal(problem)

        partial = BranchAndBoundSolver(
            problem, SolverOptions(node_limit=6, keep_tree=True)
        ).solve()
        incumbent = partial.objective if partial.x is not None else -np.inf
        snap = capture_snapshot(
            partial.tree, incumbent_objective=incumbent, incumbent_x=partial.x
        )
        path = str(tmp_path / "search.json")
        save_snapshot(snap, path)

        # "New process": everything reconstructed from the file.
        loaded = load_snapshot(path)
        resumed = resume_from_snapshot(problem, loaded)
        assert resumed.objective == pytest.approx(expected)
