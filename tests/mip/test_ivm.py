"""IVM vs linked-list branch-and-bound equivalence (paper §2.3 / E11)."""

import itertools

import numpy as np
import pytest

from repro.errors import MIPError
from repro.mip.ivm import (
    IVM,
    ivm_branch_and_bound,
    linked_list_branch_and_bound,
)
from repro.problems.flowshop import generate_flowshop


class TestIVMStructure:
    def test_initial_state(self):
        ivm = IVM(4)
        assert ivm.depth == 0
        np.testing.assert_array_equal(ivm.matrix[0], [0, 1, 2, 3])
        assert not ivm.exhausted

    def test_descend_removes_selected(self):
        ivm = IVM(4)
        ivm.position[0] = 1  # select item 1
        ivm.descend()
        assert ivm.depth == 1
        np.testing.assert_array_equal(ivm.matrix[1, :3], [0, 2, 3])

    def test_advance_carries_up(self):
        ivm = IVM(2)
        ivm.descend()       # depth 1, prefix (0, 1)
        ivm.advance()       # row exhausted at depth 1 -> carry to depth 0
        assert ivm.depth == 0
        assert ivm.position[0] == 1
        ivm.descend()
        assert ivm.prefix() == (1, 0)

    def test_full_enumeration_visits_all_permutations(self):
        n = 4
        ivm = IVM(n)
        seen = set()
        while not ivm.exhausted:
            if ivm.at_leaf_row:
                seen.add(ivm.prefix())
                ivm.advance()
            else:
                ivm.descend()
        assert seen == set(itertools.permutations(range(n)))

    def test_memory_is_flat_and_constant(self):
        ivm = IVM(10)
        expected = 10 * 10 * 8 + 10 * 8 + 8
        assert ivm.memory_bytes() == expected

    def test_bad_n_raises(self):
        with pytest.raises(MIPError):
            IVM(0)

    def test_descend_on_leaf_raises(self):
        ivm = IVM(2)
        ivm.descend()
        with pytest.raises(MIPError):
            ivm.descend()


def brute_force_flowshop(shop):
    best = np.inf
    best_perm = None
    for perm in itertools.permutations(range(shop.num_jobs)):
        cost = shop.makespan(perm)
        if cost < best:
            best, best_perm = cost, perm
    return best, best_perm


class TestPermutationBB:
    @pytest.mark.parametrize("jobs,machines,seed", [(5, 3, 0), (6, 3, 1), (7, 2, 2)])
    def test_ivm_finds_optimal_makespan(self, jobs, machines, seed):
        shop = generate_flowshop(jobs, machines, seed=seed)
        expected, _ = brute_force_flowshop(shop)
        res = ivm_branch_and_bound(jobs, shop.lower_bound, shop.makespan)
        assert res.best_cost == pytest.approx(expected)
        assert shop.makespan(res.best_permutation) == pytest.approx(expected)

    @pytest.mark.parametrize("jobs,machines,seed", [(5, 3, 0), (6, 3, 1), (7, 2, 2)])
    def test_linked_list_equivalent(self, jobs, machines, seed):
        """Both engines visit the same nodes and find the same optimum."""
        shop = generate_flowshop(jobs, machines, seed=seed)
        ivm_res = ivm_branch_and_bound(jobs, shop.lower_bound, shop.makespan)
        ll_res = linked_list_branch_and_bound(jobs, shop.lower_bound, shop.makespan)
        assert ivm_res.best_cost == pytest.approx(ll_res.best_cost)
        assert ivm_res.nodes_explored == ll_res.nodes_explored
        assert ivm_res.leaves_evaluated == ll_res.leaves_evaluated
        assert ivm_res.pruned == ll_res.pruned

    def test_ivm_memory_smaller_than_linked(self):
        shop = generate_flowshop(8, 3, seed=3)
        ivm_res = ivm_branch_and_bound(8, shop.lower_bound, shop.makespan)
        ll_res = linked_list_branch_and_bound(8, shop.lower_bound, shop.makespan)
        assert ivm_res.tree_memory_bytes < ll_res.tree_memory_bytes

    def test_pruning_effective(self):
        shop = generate_flowshop(7, 3, seed=4)
        res = ivm_branch_and_bound(7, shop.lower_bound, shop.makespan)
        import math

        full_leaves = math.factorial(7)
        assert res.leaves_evaluated < full_leaves / 4
        assert res.pruned > 0

    def test_bound_is_admissible(self):
        """The LB never exceeds the true best completion of the subtree."""
        shop = generate_flowshop(6, 3, seed=5)
        rng = np.random.default_rng(0)
        for _ in range(20):
            k = int(rng.integers(1, 5))
            prefix = tuple(rng.permutation(6)[:k])
            remaining = [j for j in range(6) if j not in prefix]
            best_completion = min(
                shop.makespan(prefix + perm)
                for perm in itertools.permutations(remaining)
            )
            assert shop.lower_bound(prefix) <= best_completion + 1e-9
