"""Reliability branching, energy accounting, and multiknapsack tests."""

import itertools

import numpy as np
import pytest

from repro.device.gpu import Device
from repro.device.spec import CPU_HOST, V100
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.problems.multiknapsack import generate_multiknapsack
from repro.strategies.engine import DeviceCostHook


def brute_force(problem):
    best = -np.inf
    for bits in itertools.product([0.0, 1.0], repeat=problem.n):
        x = np.array(bits)
        if problem.is_feasible(x):
            best = max(best, problem.objective(x))
    return best


class TestReliabilityBranching:
    def test_matches_other_rules(self):
        p = generate_knapsack(14, seed=5)
        expected, _ = knapsack_dp_optimal(p)
        res = BranchAndBoundSolver(
            p, SolverOptions(branching="reliability")
        ).solve()
        assert res.status is MIPStatus.OPTIMAL
        assert res.objective == pytest.approx(expected)

    def test_competitive_tree_size(self):
        from repro.problems.random_mip import generate_random_mip

        p = generate_random_mip(14, 10, seed=21, bound=4.0)
        most_frac = BranchAndBoundSolver(
            p, SolverOptions(branching="most_fractional")
        ).solve()
        reliability = BranchAndBoundSolver(
            p, SolverOptions(branching="reliability")
        ).solve()
        assert reliability.objective == pytest.approx(most_frac.objective)
        assert (
            reliability.stats.nodes_processed
            <= most_frac.stats.nodes_processed
        )


class TestMultiKnapsack:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force(self, seed):
        p = generate_multiknapsack(8, 3, seed=seed)
        expected = brute_force(p)
        res = BranchAndBoundSolver(p, SolverOptions()).solve()
        assert res.objective == pytest.approx(expected)

    def test_multiple_fractional_at_root(self):
        from repro.lp.simplex import solve_lp

        p = generate_multiknapsack(20, 5, seed=1)
        res = solve_lp(p.relaxation())
        # m binding rows -> up to m fractional vars; expect > 1.
        assert p.fractional_integers(res.x).size > 1


class TestEnergyAccounting:
    def test_energy_tracks_busy_time(self):
        device = Device(V100)
        a = device.alloc(np.eye(64) * 3.0)
        device.lu_factor(a)
        assert device.energy_joules == pytest.approx(
            device.busy_seconds * V100.tdp_watts
        )
        assert device.energy_joules > 0

    def test_energy_in_summary(self):
        device = Device(V100)
        device.alloc(np.eye(4))
        assert "energy_joules" in device.summary()

    def test_gpu_more_energy_efficient_on_big_dense(self):
        """Paper §2.2: GPUs are more energy efficient on their workload."""
        from repro.device import kernels as K

        big = K.gemm_kernel(4096, 4096, 4096)
        gpu_energy = big.duration(V100) * V100.tdp_watts
        cpu_energy = big.duration(CPU_HOST) * CPU_HOST.tdp_watts
        assert gpu_energy < cpu_energy

    def test_solver_energy_comparable_across_devices(self):
        p = generate_knapsack(12, seed=2)
        from repro.lp.simplex import solve_lp

        gpu_dev = Device(V100)
        solve_lp(p.relaxation(), hook=DeviceCostHook(gpu_dev, mode="dense"))
        cpu_dev = Device(CPU_HOST)
        solve_lp(p.relaxation(), hook=DeviceCostHook(cpu_dev, mode="dense"))
        # Tiny LPs: the CPU is both faster and lower-energy (why §5.5
        # batches before putting them on the GPU).
        assert cpu_dev.energy_joules < gpu_dev.energy_joules
