"""Column-generation (cutting stock) tests."""

import numpy as np
import pytest

from repro.errors import ProblemFormatError
from repro.mip.colgen import (
    CuttingStockInstance,
    _integer_knapsack_best_pattern,
    solve_cutting_stock,
)


class TestInstanceValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ProblemFormatError):
            CuttingStockInstance(100.0, [10.0, 20.0], [1.0])

    def test_oversized_width(self):
        with pytest.raises(ProblemFormatError):
            CuttingStockInstance(100.0, [150.0], [1.0])

    def test_negative_demand(self):
        with pytest.raises(ProblemFormatError):
            CuttingStockInstance(100.0, [10.0], [-1.0])


class TestPricingKnapsack:
    def test_finds_best_pattern(self):
        # widths 3 and 5, values 2 and 3, capacity 7: best is 3+3 (v=4)
        # over 5+(waste) (v=3).
        pattern = _integer_knapsack_best_pattern(
            np.array([3.0, 5.0]), np.array([2.0, 3.0]), 7.0
        )
        np.testing.assert_array_equal(pattern, [2.0, 0.0])

    def test_pattern_respects_capacity(self):
        rng = np.random.default_rng(0)
        widths = rng.integers(5, 40, size=6).astype(float)
        values = rng.random(6)
        pattern = _integer_knapsack_best_pattern(widths, values, 100.0)
        assert pattern is not None
        assert widths @ pattern <= 100.0 + 1e-9

    def test_no_positive_values(self):
        assert (
            _integer_knapsack_best_pattern(
                np.array([3.0]), np.array([0.0]), 10.0
            )
            is None
        )


class TestCuttingStock:
    def test_textbook_instance(self):
        # Classic: W=100; widths 45 (×97), 36 (×610), 31 (×395), 14 (×211)
        # is too big for a unit test; use a scaled-down classic.
        instance = CuttingStockInstance(
            stock_width=100.0,
            widths=np.array([45.0, 36.0, 31.0, 14.0]),
            demands=np.array([4.0, 6.0, 4.0, 2.0]),
        )
        result = solve_cutting_stock(instance)
        # LP bound ≥ total material / stock width.
        material = float(instance.widths @ instance.demands)
        assert result.lp_bound >= material / 100.0 - 1e-6
        assert result.rolls >= result.lp_bound - 1e-6
        # Integer solution covers all demands within capacity.
        coverage = result.patterns @ result.usage
        assert np.all(coverage >= instance.demands - 1e-6)
        for p in range(result.patterns.shape[1]):
            assert instance.widths @ result.patterns[:, p] <= 100.0 + 1e-9

    def test_single_width_exact(self):
        # 10 items of width 30 on rolls of 100 -> 3 per roll -> 4 rolls.
        instance = CuttingStockInstance(100.0, [30.0], [10.0])
        result = solve_cutting_stock(instance)
        assert result.rolls == pytest.approx(4.0)

    def test_perfect_packing(self):
        # widths 60/40 demands 3/3: each roll takes 60+40 -> 3 rolls.
        instance = CuttingStockInstance(100.0, [60.0, 40.0], [3.0, 3.0])
        result = solve_cutting_stock(instance)
        assert result.rolls == pytest.approx(3.0)

    def test_column_generation_beats_initial_columns(self):
        """Generated patterns must improve on the naive one-width ones."""
        instance = CuttingStockInstance(
            100.0, np.array([45.0, 36.0, 31.0, 14.0]), np.array([8.0, 8.0, 8.0, 8.0])
        )
        result = solve_cutting_stock(instance)
        assert result.pricing_rounds > 1  # actually generated columns
        naive_rolls = sum(
            np.ceil(d / np.floor(100.0 / w))
            for w, d in zip(instance.widths, instance.demands)
        )
        assert result.rolls < naive_rolls

    def test_zero_demand(self):
        instance = CuttingStockInstance(100.0, [30.0], [0.0])
        result = solve_cutting_stock(instance)
        assert result.rolls == pytest.approx(0.0)
