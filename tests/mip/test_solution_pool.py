"""Solution-pool tests and batched-vs-serial cross-check property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mip.batch_solver import BatchedNodeSolver, BatchedSolverOptions
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack


class TestSolutionPool:
    def test_pool_sorted_best_first(self):
        p = generate_knapsack(14, seed=2)
        res = BranchAndBoundSolver(
            p, SolverOptions(solution_pool_size=5, use_rounding_heuristic=True)
        ).solve()
        assert res.ok
        objs = [obj for obj, _ in res.solution_pool]
        assert objs == sorted(objs, reverse=True)
        assert objs[0] == pytest.approx(res.objective)

    def test_pool_entries_feasible(self):
        p = generate_knapsack(14, seed=3)
        res = BranchAndBoundSolver(
            p, SolverOptions(solution_pool_size=4)
        ).solve()
        for obj, x in res.solution_pool:
            assert p.is_feasible(x)
            assert p.objective(x) == pytest.approx(obj)

    def test_pool_capped(self):
        p = generate_knapsack(16, seed=1)
        res = BranchAndBoundSolver(
            p, SolverOptions(solution_pool_size=2)
        ).solve()
        assert len(res.solution_pool) <= 2

    def test_default_pool_is_singleton(self):
        p = generate_knapsack(12, seed=0)
        res = BranchAndBoundSolver(p, SolverOptions()).solve()
        assert len(res.solution_pool) == 1


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=3, max_value=6),
    batch=st.integers(min_value=1, max_value=8),
)
def test_property_batched_and_serial_solvers_agree(seed, n, batch):
    """Both drivers reach the same optimum (or both prove infeasible)."""
    rng = np.random.default_rng(seed)
    p = MIPProblem(
        c=rng.standard_normal(n) * 4,
        integer=np.ones(n, dtype=bool),
        a_ub=rng.standard_normal((3, n)),
        b_ub=rng.random(3) * 2 + 0.5,
        lb=np.zeros(n),
        ub=np.ones(n),
    )
    serial = BranchAndBoundSolver(p, SolverOptions()).solve()
    batched = BatchedNodeSolver(p, BatchedSolverOptions(batch_size=batch)).solve()
    assert serial.status == batched.status
    if serial.status is MIPStatus.OPTIMAL:
        assert batched.objective == pytest.approx(serial.objective, abs=1e-6)
