"""Probing and primal-heuristic tests."""

import numpy as np
import pytest

from repro.mip.heuristics import (
    diving_heuristic,
    feasibility_pump,
    rounding_heuristic,
)
from repro.mip.probing import apply_probing, probe
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.lp.simplex import solve_lp
from repro.problems.knapsack import generate_knapsack
from repro.problems.setcover import generate_set_cover


class TestProbing:
    def test_forced_fixing_detected(self):
        # x0 + x1 <= 1 and x0 >= 1 (via -x0 <= -1) forces x1 = 0.
        p = MIPProblem(
            c=[1.0, 1.0],
            integer=np.array([True, True]),
            a_ub=[[1.0, 1.0], [-1.0, 0.0]],
            b_ub=[1.0, -1.0],
            ub=np.ones(2),
        )
        res = probe(p)
        assert res.feasible
        assert res.fixed.get(0) == 1.0 or res.ub[1] == 0.0

    def test_infeasible_detected(self):
        # x0 <= 0.4 and x0 >= 0.6 for a binary: both fixings fail.
        p = MIPProblem(
            c=[1.0],
            integer=np.array([True]),
            a_ub=[[1.0], [-1.0]],
            b_ub=[0.4, -0.6],
            ub=np.ones(1),
        )
        res = probe(p)
        assert not res.feasible

    def test_implications_recorded(self):
        # x0 = 1 forces x1 = 0 via x0 + x1 <= 1, and vice versa.
        p = MIPProblem(
            c=[1.0, 1.0],
            integer=np.array([True, True]),
            a_ub=[[1.0, 1.0]],
            b_ub=[1.0],
            ub=np.ones(2),
        )
        res = probe(p)
        assert res.feasible
        implied = res.implications.get((0, 1), []) + res.implications.get((1, 1), [])
        assert any(v == 0 for _, v in implied)

    def test_probing_preserves_optimum(self):
        p = generate_set_cover(8, 16, seed=3)
        direct = BranchAndBoundSolver(p, SolverOptions()).solve()
        res = probe(p)
        assert res.feasible
        tightened = apply_probing(p, res)
        after = BranchAndBoundSolver(tightened, SolverOptions()).solve()
        assert after.status is MIPStatus.OPTIMAL
        assert after.objective == pytest.approx(direct.objective, abs=1e-6)

    def test_no_rows_is_trivially_feasible(self):
        p = MIPProblem(c=[1.0], integer=np.array([True]), ub=np.ones(1))
        res = probe(p)
        assert res.feasible and res.num_fixed == 0

    def test_apply_infeasible_raises(self):
        p = MIPProblem(
            c=[1.0],
            integer=np.array([True]),
            a_ub=[[1.0], [-1.0]],
            b_ub=[0.4, -0.6],
            ub=np.ones(1),
        )
        res = probe(p)
        with pytest.raises(ValueError):
            apply_probing(p, res)


class TestRounding:
    def test_feasible_rounding_returned(self):
        p = generate_knapsack(10, seed=0)
        res = solve_lp(p.relaxation())
        candidate = rounding_heuristic(p, res.x)
        if candidate is not None:
            assert p.is_feasible(candidate)

    def test_infeasible_rounding_rejected(self):
        # Equality row: rounding 0.5/0.5 breaks x0 + x1 = 1? No - rounds
        # to 0/1 or 1/0 depending on ties; construct a case that breaks.
        p = MIPProblem(
            c=[1.0, 1.0],
            integer=np.array([True, True]),
            a_eq=[[2.0, 2.0]],
            b_eq=[1.0],  # no integer point satisfies 2x0+2x1 = 1
            ub=np.ones(2),
        )
        assert rounding_heuristic(p, np.array([0.25, 0.25])) is None


class TestDiving:
    def test_dive_reaches_feasible_point(self):
        p = generate_knapsack(12, seed=3)
        relax = p.relaxation()
        res = solve_lp(relax)
        point = diving_heuristic(p, relax, res.x)
        if point is not None:
            assert p.is_feasible(point)

    def test_depth_limit_respected(self):
        p = generate_knapsack(12, seed=4)
        relax = p.relaxation()
        res = solve_lp(relax)
        point = diving_heuristic(p, relax, res.x, max_depth=0)
        # Zero depth: only succeeds if already integral.
        if point is not None:
            assert p.fractional_integers(res.x).size == 0


class TestFeasibilityPump:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pump_finds_feasible_knapsack_point(self, seed):
        p = generate_knapsack(14, seed=seed)
        point = feasibility_pump(p)
        assert point is not None
        assert p.is_feasible(point)

    def test_pump_on_cover(self):
        p = generate_set_cover(8, 16, seed=1)
        point = feasibility_pump(p)
        assert point is not None
        assert p.is_feasible(point)

    def test_pump_gives_up_gracefully(self):
        # Infeasible MIP: pump must return None, not loop forever.
        p = MIPProblem(
            c=[1.0],
            integer=np.array([True]),
            a_ub=[[1.0], [-1.0]],
            b_ub=[0.7, -0.5],
            ub=np.ones(1),
        )
        assert feasibility_pump(p, max_iterations=5) is None
