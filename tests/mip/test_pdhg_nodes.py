"""PDHG node LPs inside branch-and-bound: exactness survives the padding."""

import numpy as np
import pytest

from repro.api import SolveOptions, solve
from repro.check import certify_mip_result
from repro.device.gpu import Device
from repro.device.spec import V100
from repro.lp.pdhg import PDHGOptions
from repro.mip.batch_solver import BatchedNodeSolver, BatchedSolverOptions
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, ExecutionEngine, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.problems.random_mip import generate_random_mip


class TestSerialPdhgNodes:
    def test_knapsack_matches_dp(self):
        p = generate_knapsack(12, seed=5)
        expected, _ = knapsack_dp_optimal(p)
        engine = ExecutionEngine(node_lp="pdhg")
        res = BranchAndBoundSolver(p, SolverOptions(), engine=engine).solve()
        assert res.status is MIPStatus.OPTIMAL
        assert res.objective == pytest.approx(expected)
        assert engine.pdhg_stats["solves"] > 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_mip_matches_simplex_nodes(self, seed):
        p = generate_random_mip(6, 4, seed=seed)
        exact = BranchAndBoundSolver(p, SolverOptions()).solve()
        pdhg = BranchAndBoundSolver(
            p, SolverOptions(node_lp="pdhg"), engine=ExecutionEngine(node_lp="pdhg")
        ).solve()
        assert pdhg.status is exact.status
        if exact.status is MIPStatus.OPTIMAL:
            assert pdhg.objective == pytest.approx(exact.objective, abs=1e-5)

    def test_solver_options_select_engine(self):
        # node_lp travels through SolverOptions to the default engine.
        p = generate_knapsack(10, seed=3)
        expected, _ = knapsack_dp_optimal(p)
        res = BranchAndBoundSolver(p, SolverOptions(node_lp="pdhg")).solve()
        assert res.status is MIPStatus.OPTIMAL
        assert res.objective == pytest.approx(expected)


class TestApiIntegration:
    def test_certificate_clean_on_differential_corpus(self):
        # Acceptance: api.solve with the PDHG node engine stays exact
        # under the rational certificate audit across a small corpus.
        corpus = [generate_knapsack(10, seed=2)] + [
            generate_random_mip(5, 3, seed=s) for s in range(3)
        ]
        for problem in corpus:
            direct = solve(problem)
            report = solve(
                problem, SolveOptions(solver=SolverOptions(node_lp="pdhg"))
            )
            assert report.status == direct.status
            if direct.ok:
                assert report.objective == pytest.approx(direct.objective, abs=1e-6)
                audit = certify_mip_result(problem, report.result)
                assert audit.ok, [c.name for c in audit.failures]

    def test_pdhg_strategy_is_registered(self):
        p = generate_knapsack(10, seed=4)
        expected, _ = knapsack_dp_optimal(p)
        report = solve(p, SolveOptions(strategy="pdhg"))
        assert report.ok
        assert report.objective == pytest.approx(expected)
        # The metered engine priced a first-order kernel stream.
        assert report.makespan_seconds > 0.0
        assert report.metrics["counters"]["pdhg.solves"] > 0

    def test_loose_tolerance_still_exact_from_padding(self):
        # A deliberately sloppy eps yields loose node bounds; the padded
        # upper_bound keeps pruning sound, so the incumbent stays optimal.
        p = generate_knapsack(10, seed=6)
        expected, _ = knapsack_dp_optimal(p)
        report = solve(
            p,
            SolveOptions(
                solver=SolverOptions(
                    node_lp="pdhg", pdhg=PDHGOptions(tolerance=1e-5)
                )
            ),
        )
        assert report.ok
        assert report.objective == pytest.approx(expected)


class TestBatchedPdhgNodes:
    @pytest.mark.parametrize("batch_size", [4, 8])
    def test_batched_matches_serial_optimum(self, batch_size):
        p = generate_knapsack(12, seed=7)
        expected, _ = knapsack_dp_optimal(p)
        solver = BatchedNodeSolver(
            p,
            BatchedSolverOptions(batch_size=batch_size, lp_engine="pdhg"),
        )
        res = solver.solve()
        assert res.status is MIPStatus.OPTIMAL
        assert res.objective == pytest.approx(expected)
        counters = solver.device.metrics.to_dict()["counters"]
        assert counters["pdhg.batch_rounds"] >= 1
        assert counters["pdhg.node_solves"] >= res.stats.nodes_processed - counters.get(
            "pdhg.fallbacks", 0
        )

    def test_batched_mixed_integer(self):
        p = generate_random_mip(8, 5, seed=3, integer_fraction=0.5, bound=4.0)
        exact = BatchedNodeSolver(p, BatchedSolverOptions(batch_size=8)).solve()
        pdhg = BatchedNodeSolver(
            p, BatchedSolverOptions(batch_size=8, lp_engine="pdhg")
        ).solve()
        assert pdhg.objective == pytest.approx(exact.objective, abs=1e-5)

    def test_api_batched_path_with_device(self):
        p = generate_knapsack(10, seed=8)
        expected, _ = knapsack_dp_optimal(p)
        report = solve(
            p,
            SolveOptions(
                solver=SolverOptions(node_lp="pdhg"),
                device=Device(V100),
                mip_node_batch=4,
            ),
        )
        assert report.ok
        assert report.objective == pytest.approx(expected)
        assert report.makespan_seconds > 0.0
        assert "pdhg.batch_rounds" in report.metrics["counters"]
