"""Batched-node branch-and-bound tests (§5.5 end-to-end)."""

import numpy as np
import pytest

from repro.mip.batch_solver import BatchedNodeSolver, BatchedSolverOptions
from repro.mip.problem import MIPProblem
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.problems.random_mip import generate_random_mip
from repro.strategies.cpu_orchestrated import CpuOrchestratedEngine


class TestCorrectness:
    @pytest.mark.parametrize("batch_size", [1, 4, 16])
    def test_same_optimum_as_serial(self, batch_size):
        p = generate_knapsack(16, seed=4)
        expected, _ = knapsack_dp_optimal(p)
        res = BatchedNodeSolver(
            p, BatchedSolverOptions(batch_size=batch_size)
        ).solve()
        assert res.status is MIPStatus.OPTIMAL
        assert res.objective == pytest.approx(expected)
        assert p.is_feasible(res.x)

    def test_infeasible(self):
        p = MIPProblem(
            c=[1.0],
            integer=np.array([True]),
            a_ub=[[1.0], [-1.0]],
            b_ub=[0.7, -0.5],
            ub=[1.0],
        )
        res = BatchedNodeSolver(p).solve()
        assert res.status is MIPStatus.INFEASIBLE

    def test_node_limit(self):
        p = generate_knapsack(24, seed=1, correlation="strong")
        res = BatchedNodeSolver(
            p, BatchedSolverOptions(batch_size=4, node_limit=8)
        ).solve()
        assert res.status is MIPStatus.NODE_LIMIT

    def test_mixed_integer(self):
        p = generate_random_mip(8, 5, seed=3, integer_fraction=0.5, bound=4.0)
        serial = BranchAndBoundSolver(p, SolverOptions()).solve()
        batched = BatchedNodeSolver(p, BatchedSolverOptions(batch_size=8)).solve()
        assert batched.objective == pytest.approx(serial.objective, abs=1e-6)


class TestBatchingEconomics:
    def test_batched_kernel_stream(self):
        p = generate_knapsack(16, seed=4)
        solver = BatchedNodeSolver(p, BatchedSolverOptions(batch_size=8))
        solver.solve()
        assert solver.device.kernel_count("batched_getrf") == solver.rounds
        assert solver.rounds < solver.stats.nodes_processed

    def test_faster_than_serial_per_node_launches(self):
        """The §5.5 claim end-to-end: batched node rounds beat one small
        kernel stream per node on the same search."""
        p = generate_knapsack(18, seed=6)
        serial_engine = CpuOrchestratedEngine()
        serial = BranchAndBoundSolver(p, SolverOptions(), engine=serial_engine)
        serial_result = serial.solve()

        batched = BatchedNodeSolver(p, BatchedSolverOptions(batch_size=16))
        batched_result = batched.solve()

        assert batched_result.objective == pytest.approx(serial_result.objective)
        serial_rate = serial_result.stats.nodes_processed / serial_engine.elapsed_seconds
        batched_rate = batched_result.stats.nodes_processed / batched.device.clock.now
        assert batched_rate > 2 * serial_rate

    def test_larger_batches_fewer_rounds(self):
        p = generate_knapsack(18, seed=6)
        small = BatchedNodeSolver(p, BatchedSolverOptions(batch_size=2))
        small.solve()
        large = BatchedNodeSolver(p, BatchedSolverOptions(batch_size=32))
        large.solve()
        assert large.rounds < small.rounds
