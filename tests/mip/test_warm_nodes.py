"""Satellite: node-LP warm starts — counters, caches, and equivalence.

The warm path must be an accounting-only change: identical optima and
node counts with warm starts on or off, big pivot savings, zero audit
failures on healthy instances, and every cache bounded (the per-node
:class:`~repro.lp.warm.WarmStateCache` and the first-order
``_pdhg_warm`` iterate cache) so deep trees cannot hoard memory.
"""

import numpy as np
import pytest

from repro.lp.problem import LinearProgram
from repro.mip.batch_solver import BatchedNodeSolver, BatchedSolverOptions
from repro.mip.solver import BranchAndBoundSolver, ExecutionEngine, SolverOptions
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal


@pytest.fixture(scope="module")
def knapsack():
    return generate_knapsack(18, seed=3, correlation="strong")


@pytest.fixture(scope="module")
def warm_cold(knapsack):
    warm = BranchAndBoundSolver(
        knapsack, SolverOptions(warm_start=True)
    )
    warm_res = warm.solve()
    cold_res = BranchAndBoundSolver(
        knapsack, SolverOptions(warm_start=False)
    ).solve()
    return warm, warm_res, cold_res


class TestSerialWarmNodes:
    def test_same_answer_same_tree(self, knapsack, warm_cold):
        _, warm_res, cold_res = warm_cold
        optimal, _ = knapsack_dp_optimal(knapsack)
        assert warm_res.objective == pytest.approx(optimal)
        assert warm_res.status is cold_res.status
        assert warm_res.objective == cold_res.objective
        assert warm_res.best_bound == cold_res.best_bound
        assert warm_res.stats.nodes_processed == cold_res.stats.nodes_processed

    def test_warm_counters(self, warm_cold):
        _, warm_res, cold_res = warm_cold
        ws, cs = warm_res.stats, cold_res.stats
        assert ws.warm_starts > 0
        assert ws.warm_factor_reuses > 0
        assert ws.warm_audit_failures == 0
        # Cold runs never take the warm path.
        assert cs.warm_starts == 0
        assert cs.warm_pivots == 0
        assert cs.warm_factor_reuses == 0

    def test_pivot_reduction(self, warm_cold):
        _, warm_res, cold_res = warm_cold
        warm_pivots = warm_res.stats.warm_pivots + warm_res.stats.cold_pivots
        cold_pivots = cold_res.stats.warm_pivots + cold_res.stats.cold_pivots
        # The tentpole claim, at its E15 floor: ≥ 2x fewer pivots.
        assert warm_pivots * 2 <= cold_pivots

    def test_warm_state_cache_bounded(self, warm_cold):
        solver, _, _ = warm_cold
        assert len(solver._warm_states) <= solver._warm_states.capacity

    def test_determinism(self, knapsack, warm_cold):
        _, warm_res, _ = warm_cold
        again = BranchAndBoundSolver(
            knapsack, SolverOptions(warm_start=True)
        ).solve()
        assert repr(again.objective) == repr(warm_res.objective)
        assert repr(again.best_bound) == repr(warm_res.best_bound)
        assert again.stats.nodes_processed == warm_res.stats.nodes_processed


class TestBatchedWarmNodes:
    def test_batched_matches_serial_with_warm_stats(self, knapsack, warm_cold):
        _, warm_res, _ = warm_cold
        solver = BatchedNodeSolver(knapsack, BatchedSolverOptions(batch_size=8))
        res = solver.solve()
        assert res.objective == pytest.approx(warm_res.objective)
        assert res.stats.warm_starts > 0
        assert res.stats.warm_factor_reuses > 0
        assert res.stats.warm_audit_failures == 0
        assert len(solver._warm_states) <= solver._warm_states.capacity


class TestPDHGWarmCacheBound:
    def test_deep_shape_churn_stays_bounded(self):
        """Distinct standard-form shapes beyond capacity evict LRU-first."""
        engine = ExecutionEngine(node_lp="pdhg")
        cap = ExecutionEngine.PDHG_WARM_CAPACITY
        for k in range(2, cap + 10):
            lp = LinearProgram(
                c=np.ones(k),
                a_ub=np.ones((1, k)),
                b_ub=np.array([float(k)]),
                lb=np.zeros(k),
                ub=np.full(k, np.inf),
            )
            engine.solve_relaxation(lp.to_standard_form())
            assert len(engine._pdhg_warm) <= cap
        # The cache saw more shapes than it may hold and is full now.
        assert len(engine._pdhg_warm) == cap
