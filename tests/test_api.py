"""repro.api.solve — the unified front door — and the strategy registry."""

import numpy as np
import pytest

from repro import obs
from repro.api import SolveOptions, SolveReport, solve
from repro.errors import ReproError
from repro.lp.problem import LinearProgram
from repro.mip.solver import BranchAndBoundSolver, ExecutionEngine, SolverOptions
from repro.problems.knapsack import generate_knapsack
from repro.strategies import registry
from repro.strategies.runner import STRATEGIES, run_strategy


def small_lp():
    # maximize x1 + 2 x2 s.t. x1+x2 ≤ 4, x1+3x2 ≤ 6, x ≥ 0 → x=(3,1), obj 5.
    return LinearProgram(
        c=[1.0, 2.0],
        a_ub=[[1.0, 1.0], [1.0, 3.0]],
        b_ub=[4.0, 6.0],
    )


class TestSolveMip:
    def test_direct_matches_raw_solver(self):
        problem = generate_knapsack(10, seed=5)
        report = solve(problem)
        raw = BranchAndBoundSolver(problem, SolverOptions()).solve()
        assert report.ok and report.status == "optimal"
        assert report.objective == pytest.approx(raw.objective)
        assert report.strategy == "direct"
        assert report.makespan_seconds == 0.0
        assert report.result is not None
        assert report.x is not None

    def test_strategy_produces_metered_report(self):
        problem = generate_knapsack(8, seed=3)
        report = solve(problem, SolveOptions(strategy="hybrid"))
        direct = solve(problem)
        assert report.objective == pytest.approx(direct.objective)
        assert report.strategy == "hybrid"
        assert report.makespan_seconds > 0.0
        assert report.strategy_report is not None
        assert report.metrics["counters"]  # device kernel counts

    def test_unknown_strategy_raises(self):
        with pytest.raises(ReproError, match="unknown strategy"):
            solve(generate_knapsack(6), SolveOptions(strategy="nope"))

    def test_explicit_engine_overrides_strategy(self):
        problem = generate_knapsack(8, seed=3)
        report = solve(problem, SolveOptions(strategy="ignored", engine=ExecutionEngine()))
        assert report.ok  # strategy name never resolved through the registry


class TestSolveLp:
    def test_lp_path(self):
        report = solve(small_lp())
        assert report.ok
        assert report.strategy == "lp"
        assert report.objective == pytest.approx(5.0)
        assert report.lp_result is not None
        assert report.lp_iterations > 0
        assert np.allclose(report.x, [3.0, 1.0])

    def test_lp_on_device_charges_kernels(self):
        from repro.device.gpu import Device
        from repro.device.spec import V100

        device = Device(V100)
        report = solve(small_lp(), SolveOptions(device=device))
        assert report.ok
        assert report.makespan_seconds == device.clock.now > 0.0
        assert report.metrics["counters"]["kernels.getrf"] == 1


class TestReportShape:
    def test_to_dict_shared_shape(self):
        report = solve(generate_knapsack(8, seed=3), SolveOptions(strategy="hybrid"))
        d = report.to_dict()
        assert set(d) == {
            "status",
            "objective",
            "mode",
            "strategy",
            "trace_id",
            "bounds",
            "nodes",
            "lp_iterations",
            "makespan_seconds",
            "metrics",
        }
        assert set(d["bounds"]) == {"best_bound", "gap"}
        # StrategyReport exports the same shape.
        sd = report.strategy_report.to_dict()
        assert set(sd) == set(d)
        assert sd["status"] == d["status"]
        assert sd["objective"] == pytest.approx(d["objective"])

    def test_non_finite_values_export_as_none(self):
        report = SolveReport(status="infeasible", objective=float("nan"), x=None, strategy="direct")
        d = report.to_dict()
        assert d["objective"] is None
        assert d["bounds"]["best_bound"] is None
        assert d["bounds"]["gap"] is None


class TestTracing:
    def test_trace_option_attaches_tracer(self):
        report = solve(generate_knapsack(8, seed=2), SolveOptions(trace=True))
        assert report.tracer is not None
        assert report.trace_id == report.tracer.trace_id
        assert report.tracer.find("mip.solve")
        assert obs.active() is None  # scope ended with the call

    def test_ambient_tracer_is_reused(self):
        with obs.tracing() as tracer:
            report = solve(generate_knapsack(8, seed=2))
        assert report.trace_id == tracer.trace_id
        assert report.tracer is None  # caller owns the ambient tracer

    def test_untraced_report_has_no_trace_id(self):
        report = solve(generate_knapsack(8, seed=2))
        assert report.trace_id == ""
        assert report.tracer is None


class TestRegistry:
    def test_builtins_registered(self):
        names = registry.available_strategies()
        assert {"direct", "gpu_only", "cpu_orchestrated", "hybrid", "big_mip_4"} <= set(
            names
        )
        assert names == sorted(names)
        descriptions = registry.describe_strategies()
        assert all(descriptions[n] for n in names)

    def test_duplicate_registration_guard(self):
        with pytest.raises(ReproError, match="already registered"):
            registry.register_strategy("direct", lambda opts: ExecutionEngine())

    def test_runtime_registration(self):
        try:
            registry.register_strategy(
                "test_custom",
                lambda opts: ExecutionEngine(simplex_options=opts),
                "test-only engine",
            )
            report = solve(
                generate_knapsack(8, seed=4), SolveOptions(strategy="test_custom")
            )
            assert report.ok and report.strategy == "test_custom"
        finally:
            registry._REGISTRY.pop("test_custom", None)
            registry._DESCRIPTIONS.pop("test_custom", None)

    def test_engine_for_builds_fresh_instances(self):
        a = registry.engine_for("hybrid")
        b = registry.engine_for("hybrid")
        assert a is not b


class TestRunnerShim:
    def test_strategies_view_excludes_direct(self):
        assert "direct" not in STRATEGIES
        assert {"gpu_only", "cpu_orchestrated", "hybrid", "big_mip_4"} <= set(STRATEGIES)

    def test_run_strategy_matches_api(self):
        problem = generate_knapsack(8, seed=3)
        shim = run_strategy(problem, "gpu_only")
        direct = solve(problem, SolveOptions(strategy="gpu_only"))
        assert shim.result.objective == pytest.approx(direct.objective)
        assert shim.makespan_seconds == pytest.approx(direct.makespan_seconds)

    def test_run_strategy_rejects_reportless_engine(self):
        with pytest.raises(TypeError):
            run_strategy(generate_knapsack(6), "direct", engine=ExecutionEngine())
