"""CLI tests (direct main() invocation, no subprocesses)."""

import numpy as np
import pytest

from repro.cli import main
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.problems.mps import write_mps


@pytest.fixture
def model_path(tmp_path):
    problem = generate_knapsack(12, seed=5)
    path = str(tmp_path / "model.mps")
    write_mps(problem, path)
    return path


class TestSolve:
    def test_plain_solve(self, model_path, capsys):
        assert main(["solve", model_path]) == 0
        out = capsys.readouterr().out
        assert "status    : optimal" in out
        expected, _ = knapsack_dp_optimal(generate_knapsack(12, seed=5))
        assert f"{expected:.6g}" in out

    def test_solve_with_strategy(self, model_path, capsys):
        assert main(["solve", model_path, "--strategy", "cpu_orchestrated"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "kernels" in out

    def test_solve_with_cuts(self, model_path, capsys):
        assert main(["solve", model_path, "--cut-rounds", "2"]) == 0

    def test_checkpoint_restart_cycle(self, model_path, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt.json")
        assert (
            main(["solve", model_path, "--node-limit", "3", "--checkpoint", ckpt])
            in (0, 1)
        )
        capsys.readouterr()
        assert main(["solve", model_path, "--restart-from", ckpt]) == 0
        out = capsys.readouterr().out
        expected, _ = knapsack_dp_optimal(generate_knapsack(12, seed=5))
        assert f"{expected:.6g}" in out

    def test_missing_file_errors(self, capsys):
        assert main(["solve", "/nonexistent.mps"]) == 2
        assert "error:" in capsys.readouterr().err


class TestGenerateInfoList:
    def test_generate_then_info(self, tmp_path, capsys):
        out_path = str(tmp_path / "gen.mps")
        assert main(["generate", "knap-20", "-o", out_path]) == 0
        capsys.readouterr()
        assert main(["info", out_path]) == 0
        out = capsys.readouterr().out
        assert "variables" in out and "20" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "knap-20" in out and "uc-3x4" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServeBench:
    def test_sweep_prints_policy_table(self, capsys):
        assert (
            main(
                [
                    "serve-bench",
                    "--requests", "24",
                    "--distinct", "8",
                    "--batch-sizes", "1,8",
                    "--show-metrics",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serve-bench" in out and "req/s" in out
        assert "serve.requests" in out  # per-stage metrics table
        assert "time.serve.device" in out

    def test_bad_batch_sizes_errors(self, capsys):
        assert main(["serve-bench", "--batch-sizes", "x,y"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCertify:
    def test_certify_honest_model(self, model_path, capsys):
        assert main(["certify", model_path]) == 0
        out = capsys.readouterr().out
        assert "certificate" in out
        assert "differential" in out
        assert "certified: OK" in out

    def test_certify_skip_differential(self, model_path, capsys):
        assert main(["certify", model_path, "--skip-differential"]) == 0
        out = capsys.readouterr().out
        assert "differential" not in out
        assert "certified: OK" in out

    def test_certify_with_strategy(self, model_path, capsys):
        assert (
            main(
                [
                    "certify", model_path,
                    "--strategy", "cpu_orchestrated",
                    "--skip-differential",
                ]
            )
            == 0
        )
        assert "certified: OK" in capsys.readouterr().out


class TestFuzzCommand:
    def test_clean_fuzz_run_exits_zero(self, tmp_path, capsys):
        assert (
            main(
                [
                    "fuzz",
                    "--budget", "3",
                    "--seed", "0",
                    "--out", str(tmp_path),
                    "--max-vars", "5",
                    "--max-rows", "3",
                    "--no-metamorphic",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fuzz" in out and "failures" in out

    def test_replay_missing_file_errors(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_fuzz_then_replay_roundtrip(self, tmp_path, capsys, monkeypatch):
        # Corrupt the solver the fuzzer uses, harvest a repro, then replay it
        # through the CLI (which uses the honest solver): no longer reproduces.
        import repro.check.fuzz as fuzz_mod

        honest = fuzz_mod.default_solve_fn()

        def corrupt_factory(node_limit=None):
            def solve(problem):
                result = honest(problem)
                if result.objective is not None:
                    result.objective += 0.5
                return result

            return solve

        monkeypatch.setattr(fuzz_mod, "default_solve_fn", corrupt_factory)
        assert (
            main(
                [
                    "fuzz",
                    "--budget", "1",
                    "--seed", "0",
                    "--out", str(tmp_path),
                    "--no-differential",
                    "--no-lp-differential",
                    "--no-metamorphic",
                ]
            )
            == 1
        )
        capsys.readouterr()
        repros = sorted(tmp_path.glob("*.json"))
        assert repros
        monkeypatch.undo()
        assert main(["replay", str(repros[0])]) == 0
        assert "no longer reproduces" in capsys.readouterr().out


class TestNodeLpFlag:
    def test_pdhg_node_lp_solves_exactly(self, model_path, capsys):
        assert main(["solve", model_path, "--node-lp", "pdhg"]) == 0
        out = capsys.readouterr().out
        assert "status    : optimal" in out
        expected, _ = knapsack_dp_optimal(generate_knapsack(12, seed=5))
        assert f"{expected:.6g}" in out

    def test_unknown_node_lp_rejected(self, model_path):
        with pytest.raises(SystemExit):
            main(["solve", model_path, "--node-lp", "barrier"])


class TestBenchSmoke:
    def test_writes_and_validates_artifact(self, tmp_path, capsys):
        from repro.obs.bench import load_bench_json

        out = str(tmp_path / "BENCH_smoke.json")
        assert main(["bench-smoke", "--sizes", "2,3", "--batch", "2", "-o", out]) == 0
        stdout = capsys.readouterr().out
        assert "bench-smoke: wrote" in stdout
        payload = load_bench_json(out)
        assert payload["bench"] == "pdhg_crossover"
        assert len(payload["rows"]) == 2

    def test_check_flag_validates_existing_artifacts(self, tmp_path, capsys):
        out = str(tmp_path / "smoke.json")
        assert main(["bench-smoke", "--sizes", "2", "--batch", "2", "-o", out]) == 0
        capsys.readouterr()
        # A fresh artifact validates; a missing one fails the run.
        assert (
            main(
                ["bench-smoke", "--sizes", "2", "--batch", "2",
                 "-o", str(tmp_path / "again.json"), "--check", out]
            )
            == 0
        )
        assert "bench-smoke: ok" in capsys.readouterr().out
        assert (
            main(
                ["bench-smoke", "--sizes", "2", "--batch", "2",
                 "-o", str(tmp_path / "third.json"),
                 "--check", str(tmp_path / "absent.json")]
            )
            == 1
        )
        assert "INVALID" in capsys.readouterr().err

    def test_bad_sizes_rejected(self, tmp_path, capsys):
        assert main(["bench-smoke", "--sizes", "two", "-o", str(tmp_path / "x.json")]) == 2
        assert "bad --sizes" in capsys.readouterr().err


class TestWarmBench:
    def test_mini_run_writes_valid_artifact(self, tmp_path, capsys):
        from repro.obs.bench import load_bench_json

        out = str(tmp_path / "BENCH_warm.json")
        assert (
            main(
                ["warm-bench", "--node-limit", "2000",
                 "--serve-requests", "8", "-o", out]
            )
            == 0
        )
        assert "warm-bench: wrote" in capsys.readouterr().out
        payload = load_bench_json(out)
        assert payload["bench"] == "e15_warm"
        summary = payload["summary"]
        assert summary["pivot_reduction"] >= 2.0
        assert summary["serve_range_hits"] + summary["serve_warm_hits"] > 0

    def test_min_reduction_gate_fails_the_run(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_warm.json")
        assert (
            main(
                ["warm-bench", "--node-limit", "2000",
                 "--serve-requests", "8", "-o", out,
                 "--min-reduction", "1e9"]
            )
            == 1
        )
        assert "FAILED pivot_reduction" in capsys.readouterr().err
