"""Tests for the from-scratch CSR/CSC sparse matrix classes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, SparseFormatError
from repro.la.sparse import CSCMatrix, CSRMatrix, coo_to_csr


def random_sparse_dense(m, n, density, seed):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((m, n))
    dense[rng.random((m, n)) > density] = 0.0
    return dense


class TestCSRConstruction:
    def test_from_dense_roundtrip(self):
        dense = random_sparse_dense(6, 4, 0.4, seed=0)
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.to_dense(), dense)

    def test_nnz_and_density(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == 2
        assert csr.density == pytest.approx(0.5)

    def test_zeros(self):
        z = CSRMatrix.zeros((3, 5))
        assert z.nnz == 0
        np.testing.assert_array_equal(z.to_dense(), np.zeros((3, 5)))

    def test_drop_tolerance(self):
        dense = np.array([[1e-15, 1.0]])
        csr = CSRMatrix.from_dense(dense)
        assert csr.nnz == 1

    def test_invalid_indptr_rejected(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_out_of_range_index_rejected(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix(
                (2, 2), np.array([0, 1, 1]), np.array([5]), np.array([1.0])
            )

    def test_empty_matrix_density(self):
        z = CSRMatrix.zeros((0, 0))
        assert z.density == 0.0


class TestCSRMatvec:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dense(self, seed):
        dense = random_sparse_dense(8, 6, 0.35, seed)
        csr = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(seed + 100).standard_normal(6)
        np.testing.assert_allclose(csr.matvec(x), dense @ x, atol=1e-12)

    def test_empty_rows(self):
        dense = np.zeros((4, 3))
        dense[1, 2] = 5.0
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.matvec(np.ones(3)), [0.0, 5.0, 0.0, 0.0])

    def test_all_zero_matrix(self):
        csr = CSRMatrix.zeros((3, 3))
        np.testing.assert_allclose(csr.matvec(np.ones(3)), np.zeros(3))

    def test_rmatvec_matches_dense(self):
        dense = random_sparse_dense(7, 5, 0.3, seed=11)
        csr = CSRMatrix.from_dense(dense)
        y = np.random.default_rng(42).standard_normal(7)
        np.testing.assert_allclose(csr.rmatvec(y), dense.T @ y, atol=1e-12)

    def test_length_mismatch(self):
        csr = CSRMatrix.zeros((2, 3))
        with pytest.raises(ShapeError):
            csr.matvec(np.ones(2))
        with pytest.raises(ShapeError):
            csr.rmatvec(np.ones(3))


class TestConversions:
    @pytest.mark.parametrize("seed", range(4))
    def test_csr_to_csc_roundtrip(self, seed):
        dense = random_sparse_dense(5, 7, 0.4, seed)
        csc = CSRMatrix.from_dense(dense).tocsc()
        np.testing.assert_allclose(csc.to_dense(), dense)
        np.testing.assert_allclose(csc.tocsr().to_dense(), dense)

    def test_transpose(self):
        dense = random_sparse_dense(4, 6, 0.5, seed=3)
        t = CSRMatrix.from_dense(dense).transpose()
        np.testing.assert_allclose(t.to_dense(), dense.T)

    def test_csc_get_col(self):
        dense = np.array([[1.0, 0.0], [3.0, 4.0]])
        csc = CSCMatrix.from_dense(dense)
        rows, vals = csc.get_col(0)
        np.testing.assert_array_equal(rows, [0, 1])
        np.testing.assert_allclose(vals, [1.0, 3.0])
        np.testing.assert_allclose(csc.col_dense(1), [0.0, 4.0])

    def test_csc_matvec(self):
        dense = random_sparse_dense(6, 6, 0.4, seed=8)
        csc = CSCMatrix.from_dense(dense)
        x = np.arange(6.0)
        np.testing.assert_allclose(csc.matvec(x), dense @ x, atol=1e-12)


class TestVstackRows:
    def test_append_cut_rows(self):
        dense = np.array([[1.0, 2.0, 0.0], [0.0, 0.0, 3.0]])
        csr = CSRMatrix.from_dense(dense)
        grown = csr.vstack_rows(
            [
                (np.array([0, 2]), np.array([5.0, -1.0])),
                (np.array([1]), np.array([7.0])),
            ]
        )
        assert grown.shape == (4, 3)
        expected = np.vstack([dense, [5.0, 0.0, -1.0], [0.0, 7.0, 0.0]])
        np.testing.assert_allclose(grown.to_dense(), expected)
        # Original is unchanged (append-only semantics).
        assert csr.shape == (2, 3)

    def test_empty_append_returns_self(self):
        csr = CSRMatrix.zeros((2, 2))
        assert csr.vstack_rows([]) is csr

    def test_bad_row_rejected(self):
        csr = CSRMatrix.zeros((1, 2))
        with pytest.raises(SparseFormatError):
            csr.vstack_rows([(np.array([5]), np.array([1.0]))])

    def test_mismatched_row_rejected(self):
        csr = CSRMatrix.zeros((1, 2))
        with pytest.raises(SparseFormatError):
            csr.vstack_rows([(np.array([0, 1]), np.array([1.0]))])


class TestSelectColumns:
    def test_basis_extraction(self):
        dense = random_sparse_dense(5, 8, 0.5, seed=21)
        csr = CSRMatrix.from_dense(dense)
        cols = np.array([6, 0, 3])
        np.testing.assert_allclose(csr.select_columns(cols), dense[:, cols])


class TestCOO:
    def test_coo_basic(self):
        csr = coo_to_csr(
            (2, 3),
            np.array([0, 1, 1]),
            np.array([2, 0, 0]),
            np.array([1.0, 2.0, 3.0]),
        )
        expected = np.array([[0.0, 0.0, 1.0], [5.0, 0.0, 0.0]])
        np.testing.assert_allclose(csr.to_dense(), expected)

    def test_coo_duplicates_summed(self):
        csr = coo_to_csr(
            (1, 1), np.array([0, 0]), np.array([0, 0]), np.array([2.0, 3.0])
        )
        assert csr.to_dense()[0, 0] == pytest.approx(5.0)

    def test_coo_out_of_range(self):
        with pytest.raises(SparseFormatError):
            coo_to_csr((1, 1), np.array([2]), np.array([0]), np.array([1.0]))

    def test_coo_length_mismatch(self):
        with pytest.raises(SparseFormatError):
            coo_to_csr((1, 1), np.array([0]), np.array([0, 0]), np.array([1.0]))


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=10),
    n=st.integers(min_value=1, max_value=10),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_roundtrip_and_matvec(m, n, density, seed):
    """Dense → CSR → dense is exact, and SpMV equals the dense product."""
    dense = random_sparse_dense(m, n, density, seed)
    csr = CSRMatrix.from_dense(dense)
    np.testing.assert_allclose(csr.to_dense(), dense)
    x = np.random.default_rng(seed ^ 0xABCDEF).standard_normal(n)
    np.testing.assert_allclose(csr.matvec(x), dense @ x, atol=1e-10)
    np.testing.assert_allclose(csr.tocsc().to_dense(), dense)
