"""CSR arithmetic operations: scale, add, matmat."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.la.sparse import CSRMatrix


def random_sparse(m, n, density, seed):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((m, n))
    dense[rng.random((m, n)) > density] = 0.0
    return dense


class TestScale:
    def test_scale_matches_dense(self):
        dense = random_sparse(5, 4, 0.5, seed=0)
        scaled = CSRMatrix.from_dense(dense).scale(-2.5)
        np.testing.assert_allclose(scaled.to_dense(), -2.5 * dense)

    def test_scale_zero(self):
        csr = CSRMatrix.from_dense(random_sparse(3, 3, 0.5, seed=1)).scale(0.0)
        np.testing.assert_allclose(csr.to_dense(), np.zeros((3, 3)))


class TestAdd:
    def test_add_matches_dense(self):
        a = random_sparse(6, 5, 0.3, seed=2)
        b = random_sparse(6, 5, 0.3, seed=3)
        out = CSRMatrix.from_dense(a).add(CSRMatrix.from_dense(b))
        np.testing.assert_allclose(out.to_dense(), a + b, atol=1e-12)

    def test_add_disjoint_patterns(self):
        a = np.diag([1.0, 2.0, 0.0])
        b = np.diag([0.0, 0.0, 3.0])
        out = CSRMatrix.from_dense(a).add(CSRMatrix.from_dense(b))
        np.testing.assert_allclose(out.to_dense(), a + b)
        assert out.nnz == 3

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            CSRMatrix.zeros((2, 3)).add(CSRMatrix.zeros((3, 2)))


class TestMatMat:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_dense_product(self, seed):
        a = random_sparse(5, 7, 0.4, seed=seed)
        b = random_sparse(7, 4, 0.4, seed=seed + 50)
        out = CSRMatrix.from_dense(a).matmat(CSRMatrix.from_dense(b))
        np.testing.assert_allclose(out.to_dense(), a @ b, atol=1e-10)

    def test_identity(self):
        a = random_sparse(4, 4, 0.6, seed=9)
        eye = CSRMatrix.from_dense(np.eye(4))
        out = CSRMatrix.from_dense(a).matmat(eye)
        np.testing.assert_allclose(out.to_dense(), a, atol=1e-12)

    def test_inner_dim_mismatch(self):
        with pytest.raises(ShapeError):
            CSRMatrix.zeros((2, 3)).matmat(CSRMatrix.zeros((2, 3)))

    def test_zero_result_dropped(self):
        # a @ b structurally nonzero but numerically cancels to zero.
        a = CSRMatrix.from_dense(np.array([[1.0, -1.0]]))
        b = CSRMatrix.from_dense(np.array([[1.0], [1.0]]))
        out = a.matmat(b)
        assert out.nnz == 0


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=6),
    k=st.integers(min_value=1, max_value=6),
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_matmat_and_add(m, k, n, seed):
    a = random_sparse(m, k, 0.5, seed)
    b = random_sparse(k, n, 0.5, seed ^ 0xA5)
    c = random_sparse(m, k, 0.5, seed ^ 0x5A)
    A, B, C = (CSRMatrix.from_dense(x) for x in (a, b, c))
    np.testing.assert_allclose(A.matmat(B).to_dense(), a @ b, atol=1e-10)
    np.testing.assert_allclose(A.add(C).to_dense(), a + c, atol=1e-12)
    np.testing.assert_allclose(
        A.add(C).matmat(B).to_dense(), (a + c) @ b, atol=1e-9
    )
