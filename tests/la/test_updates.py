"""Tests for eta-file / product-form-of-inverse basis updates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, SingularMatrixError
from repro.la.updates import (
    EtaFile,
    ProductFormInverse,
    make_eta,
    sherman_morrison_update,
)


def well_conditioned(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)) + n * np.eye(n)


class TestEtaFile:
    def test_apply_matches_explicit_matrix(self):
        rng = np.random.default_rng(0)
        n, pos = 5, 2
        w = rng.standard_normal(n)
        w[pos] = 1.5  # safe pivot
        eta = make_eta(w, pos)
        e = np.eye(n)
        e[:, pos] = eta.column
        x = rng.standard_normal(n)
        np.testing.assert_allclose(eta.apply(x), e @ x, atol=1e-12)
        np.testing.assert_allclose(eta.apply_transpose(x), e.T @ x, atol=1e-12)

    def test_eta_inverts_basis_change(self):
        # E must satisfy E w = unit vector at pos, the defining property.
        w = np.array([0.5, 2.0, -1.0])
        eta = make_eta(w, 1)
        out = eta.apply(w)
        np.testing.assert_allclose(out, [0.0, 1.0, 0.0], atol=1e-12)

    def test_zero_pivot_raises(self):
        with pytest.raises(SingularMatrixError):
            make_eta(np.array([1.0, 0.0, 2.0]), 1)

    def test_apply_zero_at_pos(self):
        eta = EtaFile(pos=0, column=np.array([2.0, 3.0]))
        out = eta.apply(np.array([0.0, 5.0]))
        np.testing.assert_allclose(out, [0.0, 5.0])


class TestProductFormInverse:
    def test_ftran_matches_direct_solve(self):
        b0 = well_conditioned(6, seed=1)
        pfi = ProductFormInverse(b0)
        rhs = np.arange(6.0)
        np.testing.assert_allclose(pfi.ftran(rhs), np.linalg.solve(b0, rhs), atol=1e-9)

    def test_btran_matches_transposed_solve(self):
        b0 = well_conditioned(6, seed=2)
        pfi = ProductFormInverse(b0)
        rhs = np.arange(6.0)
        np.testing.assert_allclose(
            pfi.btran(rhs), np.linalg.solve(b0.T, rhs), atol=1e-9
        )

    def test_update_tracks_column_replacement(self):
        """After updating position r with column a_q, solves match the
        explicitly rebuilt basis matrix."""
        rng = np.random.default_rng(3)
        n = 5
        b = well_conditioned(n, seed=3)
        pfi = ProductFormInverse(b)
        current = b.copy()
        for step in range(4):
            a_q = rng.standard_normal(n) + 1.0
            pos = step % n
            w = pfi.ftran(a_q)
            if abs(w[pos]) < 1e-8:
                continue
            pfi.update(w, pos)
            current[:, pos] = a_q
            rhs = rng.standard_normal(n)
            np.testing.assert_allclose(
                pfi.ftran(rhs), np.linalg.solve(current, rhs), atol=1e-7
            )
            np.testing.assert_allclose(
                pfi.btran(rhs), np.linalg.solve(current.T, rhs), atol=1e-7
            )

    def test_refactorize_resets_eta_count(self):
        b = well_conditioned(4, seed=4)
        pfi = ProductFormInverse(b)
        w = pfi.ftran(np.ones(4) * 2.0)
        pfi.update(w, 0)
        assert pfi.num_etas == 1
        new_b = b.copy()
        new_b[:, 0] = 2.0
        pfi.refactorize(new_b)
        assert pfi.num_etas == 0
        rhs = np.ones(4)
        np.testing.assert_allclose(
            pfi.ftran(rhs), np.linalg.solve(new_b, rhs), atol=1e-9
        )

    def test_non_square_raises(self):
        with pytest.raises(ShapeError):
            ProductFormInverse(np.ones((2, 3)))

    def test_bad_ftran_length_raises(self):
        pfi = ProductFormInverse(np.eye(3))
        with pytest.raises(ShapeError):
            pfi.update(np.ones(4), 0)


class TestShermanMorrison:
    def test_matches_direct_inverse(self):
        rng = np.random.default_rng(5)
        a = well_conditioned(5, seed=5)
        u = rng.standard_normal(5)
        v = rng.standard_normal(5)
        updated = sherman_morrison_update(np.linalg.inv(a), u, v)
        np.testing.assert_allclose(
            updated, np.linalg.inv(a + np.outer(u, v)), atol=1e-8
        )

    def test_singular_update_raises(self):
        # A = I, u = -e0, v = e0 makes A + uv^T singular.
        with pytest.raises(SingularMatrixError):
            sherman_morrison_update(
                np.eye(3), -np.eye(3)[:, 0], np.eye(3)[:, 0]
            )


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    updates=st.integers(min_value=1, max_value=6),
)
def test_property_pfi_equals_refactorization(n, seed, updates):
    """A chain of eta updates always agrees with factoring from scratch."""
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((n, n)) + n * np.eye(n)
    pfi = ProductFormInverse(b)
    current = b.copy()
    applied = 0
    for step in range(updates):
        a_q = rng.standard_normal(n) + n * 0.25
        pos = int(rng.integers(0, n))
        w = pfi.ftran(a_q)
        if abs(w[pos]) < 1e-6:
            continue  # would be an illegal (singular) basis change
        pfi.update(w, pos)
        current[:, pos] = a_q
        applied += 1
    rhs = rng.standard_normal(n)
    np.testing.assert_allclose(
        pfi.ftran(rhs), np.linalg.solve(current, rhs), atol=1e-5
    )
    assert pfi.num_etas == applied
