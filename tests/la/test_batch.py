"""Tests for MAGMA-style batched dense kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotPositiveDefiniteError, ShapeError, SingularMatrixError
from repro.la.batch import (
    batched_back_substitution,
    batched_cholesky,
    batched_forward_substitution,
    batched_gemm,
    batched_lu_factor,
    batched_lu_solve,
)
from repro.la.dense import lu_factor, lu_solve


def random_batch(k, n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((k, n, n)) + n * np.eye(n)


class TestBatchedLU:
    @pytest.mark.parametrize("k,n", [(1, 1), (1, 5), (4, 3), (16, 8), (64, 4)])
    def test_matches_looped_single_lu(self, k, n):
        a = random_batch(k, n, seed=k * 31 + n)
        b = np.random.default_rng(7).standard_normal((k, n))
        lu, piv = batched_lu_factor(a)
        x = batched_lu_solve(lu, piv, b)
        for i in range(k):
            expected = lu_solve(lu_factor(a[i]), b[i])
            np.testing.assert_allclose(x[i], expected, atol=1e-8)

    def test_solve_matches_numpy(self):
        k, n = 8, 6
        a = random_batch(k, n, seed=99)
        b = np.random.default_rng(99).standard_normal((k, n))
        lu, piv = batched_lu_factor(a)
        x = batched_lu_solve(lu, piv, b)
        np.testing.assert_allclose(
            x, np.linalg.solve(a, b[..., None])[..., 0], atol=1e-8
        )

    def test_one_singular_member_raises_with_index(self):
        a = random_batch(3, 4, seed=1)
        a[1] = 0.0
        with pytest.raises(SingularMatrixError, match="batch member 1"):
            batched_lu_factor(a)

    def test_pivoting_within_batch(self):
        # Mix members that need different pivot rows at step 0.
        a = np.stack(
            [
                np.array([[1e-14, 1.0], [1.0, 1.0]]),
                np.array([[2.0, 1.0], [1e-14, 1.0]]),
            ]
        )
        lu, piv = batched_lu_factor(a)
        assert piv[0, 0] == 1 and piv[1, 0] == 0

    def test_bad_shape_raises(self):
        with pytest.raises(ShapeError):
            batched_lu_factor(np.ones((2, 3, 4)))
        lu, piv = batched_lu_factor(random_batch(2, 3, seed=0))
        with pytest.raises(ShapeError):
            batched_lu_solve(lu, piv, np.ones((2, 4)))

    def test_input_not_mutated(self):
        a = random_batch(3, 4, seed=12)
        a_copy = a.copy()
        batched_lu_factor(a)
        np.testing.assert_array_equal(a, a_copy)


class TestBatchedTriangular:
    def test_forward(self):
        k, n = 5, 4
        rng = np.random.default_rng(0)
        lower = np.tril(rng.standard_normal((k, n, n))) + 3 * np.eye(n)
        x_true = rng.standard_normal((k, n))
        b = np.einsum("kij,kj->ki", lower, x_true)
        np.testing.assert_allclose(
            batched_forward_substitution(lower, b), x_true, atol=1e-9
        )

    def test_backward(self):
        k, n = 5, 4
        rng = np.random.default_rng(1)
        upper = np.triu(rng.standard_normal((k, n, n))) + 3 * np.eye(n)
        x_true = rng.standard_normal((k, n))
        b = np.einsum("kij,kj->ki", upper, x_true)
        np.testing.assert_allclose(
            batched_back_substitution(upper, b), x_true, atol=1e-9
        )

    def test_zero_diag_raises(self):
        with pytest.raises(SingularMatrixError):
            batched_forward_substitution(np.zeros((1, 2, 2)), np.ones((1, 2)))
        with pytest.raises(SingularMatrixError):
            batched_back_substitution(np.zeros((1, 2, 2)), np.ones((1, 2)))


class TestBatchedCholesky:
    @pytest.mark.parametrize("k,n", [(1, 3), (8, 5), (32, 2)])
    def test_reconstruction(self, k, n):
        rng = np.random.default_rng(k + n)
        g = rng.standard_normal((k, n, n))
        a = np.einsum("kij,klj->kil", g, g) + n * np.eye(n)
        l = batched_cholesky(a)
        np.testing.assert_allclose(np.einsum("kij,klj->kil", l, l), a, atol=1e-8)

    def test_not_pd_raises_with_index(self):
        a = np.stack([np.eye(2), -np.eye(2)])
        with pytest.raises(NotPositiveDefiniteError, match="batch member 1"):
            batched_cholesky(a)


class TestBatchedGEMM:
    def test_matches_loop(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((6, 3, 5))
        b = rng.standard_normal((6, 5, 2))
        c = batched_gemm(a, b)
        for i in range(6):
            np.testing.assert_allclose(c[i], a[i] @ b[i], atol=1e-12)

    def test_shape_errors(self):
        with pytest.raises(ShapeError):
            batched_gemm(np.ones((2, 3, 4)), np.ones((3, 4, 2)))
        with pytest.raises(ShapeError):
            batched_gemm(np.ones((2, 3, 4)), np.ones((2, 5, 2)))


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=12),
    n=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_batched_lu_equals_sequential(k, n, seed):
    """Batched LU is exactly the map of single LU across the batch."""
    a = random_batch(k, n, seed)
    b = np.random.default_rng(seed ^ 0xBEEF).standard_normal((k, n))
    lu, piv = batched_lu_factor(a)
    x = batched_lu_solve(lu, piv, b)
    for i in range(k):
        np.testing.assert_allclose(
            x[i], lu_solve(lu_factor(a[i]), b[i]), atol=1e-7
        )
