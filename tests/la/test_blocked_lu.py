"""Blocked LU must match the unblocked reference exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SingularMatrixError
from repro.la.dense import LUFactors, lu_factor, lu_factor_blocked, lu_solve


def well_conditioned(n, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)) + n * np.eye(n)


class TestBlockedLU:
    @pytest.mark.parametrize("n,block", [(5, 2), (16, 4), (33, 8), (64, 32), (40, 64)])
    def test_identical_to_unblocked(self, n, block):
        a = well_conditioned(n, seed=n + block)
        reference = lu_factor(a)
        blocked = lu_factor_blocked(a, block_size=block)
        np.testing.assert_allclose(blocked.lu, reference.lu, atol=1e-10)
        np.testing.assert_array_equal(blocked.piv, reference.piv)

    def test_solve_through_blocked_factors(self):
        a = well_conditioned(24, seed=7)
        b = np.random.default_rng(7).standard_normal(24)
        x = lu_solve(lu_factor_blocked(a, block_size=8), b)
        np.testing.assert_allclose(x, np.linalg.solve(a, b), atol=1e-8)

    def test_singular_raises(self):
        a = np.ones((6, 6))
        with pytest.raises(SingularMatrixError):
            lu_factor_blocked(a, block_size=4)

    def test_block_size_one(self):
        a = well_conditioned(9, seed=1)
        blocked = lu_factor_blocked(a, block_size=1)
        reference = lu_factor(a)
        np.testing.assert_allclose(blocked.lu, reference.lu, atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    block=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_blocked_equals_unblocked(n, block, seed):
    a = well_conditioned(n, seed)
    reference = lu_factor(a)
    blocked = lu_factor_blocked(a, block_size=block)
    np.testing.assert_allclose(blocked.lu, reference.lu, atol=1e-9)
    np.testing.assert_array_equal(blocked.piv, reference.piv)
