"""Sanity tests for the analytic flop/byte formulas."""

import pytest

from repro.la import flops as F


class TestFlopCounts:
    def test_gemm_symmetry(self):
        assert F.gemm_flops(2, 3, 4) == F.gemm_flops(3, 2, 4)
        assert F.gemm_flops(10, 10, 10) == 2000

    def test_gemv_matches_gemm_with_one_column(self):
        assert F.gemv_flops(7, 5) == F.gemm_flops(7, 1, 5)

    def test_lu_cubic(self):
        assert F.lu_flops(30) == (2 * 30**3) // 3
        assert F.lu_flops(60) > 7 * F.lu_flops(30)

    def test_cholesky_half_of_lu(self):
        n = 48
        assert F.cholesky_flops(n) == pytest.approx(F.lu_flops(n) / 2, rel=0.01)

    def test_qr_taller_costs_more(self):
        assert F.qr_flops(100, 10) > F.qr_flops(20, 10)
        assert F.qr_flops(10, 10) > 0

    def test_trsm_scales_with_rhs(self):
        assert F.trsm_flops(16, 4) == 4 * F.trsv_flops(16)

    def test_spmv_linear_in_nnz(self):
        assert F.spmv_flops(100) == 200

    def test_dot_axpy(self):
        assert F.dot_flops(8) == 16
        assert F.axpy_flops(8) == 16

    def test_sparse_lu_proportional_to_fill(self):
        assert F.sparse_lu_flops(1000) == 4000


class TestByteCounts:
    def test_matrix_vector_bytes(self):
        assert F.matrix_bytes(4, 5) == 160
        assert F.vector_bytes(10) == 80

    def test_gemm_bytes_counts_three_operands(self):
        assert F.gemm_bytes(2, 3, 4) == 8 * (2 * 4 + 4 * 3 + 2 * 3)

    def test_csr_bytes_structure(self):
        # values (8B) + col indices (4B) + row pointers (4B each, m+1).
        assert F.csr_bytes(10, 50) == 8 * 50 + 4 * (50 + 10 + 1)
