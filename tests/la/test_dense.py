"""Unit and property tests for repro.la.dense."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotPositiveDefiniteError, ShapeError, SingularMatrixError
from repro.la.dense import (
    back_substitution,
    cholesky,
    forward_substitution,
    lu_factor,
    lu_solve,
    qr_householder,
    qr_solve,
    solve,
)


def random_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Diagonal shift keeps condition numbers reasonable for exact checks.
    return rng.standard_normal((n, n)) + n * np.eye(n)


class TestLUFactor:
    def test_reconstruction_small(self):
        a = np.array([[4.0, 3.0], [6.0, 3.0]])
        f = lu_factor(a)
        perm = f.permutation()
        np.testing.assert_allclose(a[perm], f.lower() @ f.upper(), atol=1e-12)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 17, 40])
    def test_reconstruction_random(self, n):
        a = random_matrix(n, seed=n)
        f = lu_factor(a)
        np.testing.assert_allclose(
            a[f.permutation()], f.lower() @ f.upper(), atol=1e-9
        )

    def test_partial_pivoting_picks_largest(self):
        a = np.array([[1e-12, 1.0], [1.0, 1.0]])
        f = lu_factor(a)
        assert f.piv[0] == 1  # swapped to put the 1.0 on the diagonal

    def test_singular_matrix_raises(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(SingularMatrixError):
            lu_factor(a)

    def test_zero_matrix_raises(self):
        with pytest.raises(SingularMatrixError):
            lu_factor(np.zeros((3, 3)))

    def test_non_square_raises(self):
        with pytest.raises(ShapeError):
            lu_factor(np.ones((2, 3)))

    def test_identity(self):
        f = lu_factor(np.eye(4))
        np.testing.assert_allclose(f.lower() @ f.upper(), np.eye(4))

    def test_input_not_mutated(self):
        a = random_matrix(6, seed=1)
        a_copy = a.copy()
        lu_factor(a)
        np.testing.assert_array_equal(a, a_copy)


class TestLUSolve:
    @pytest.mark.parametrize("n", [1, 3, 10, 32])
    def test_solve_matches_numpy(self, n):
        a = random_matrix(n, seed=100 + n)
        b = np.random.default_rng(n).standard_normal(n)
        x = lu_solve(lu_factor(a), b)
        np.testing.assert_allclose(x, np.linalg.solve(a, b), atol=1e-8)

    @pytest.mark.parametrize("n", [2, 7, 20])
    def test_transposed_solve(self, n):
        a = random_matrix(n, seed=200 + n)
        b = np.random.default_rng(n).standard_normal(n)
        x = lu_solve(lu_factor(a), b, transposed=True)
        np.testing.assert_allclose(x, np.linalg.solve(a.T, b), atol=1e-8)

    def test_rhs_length_mismatch(self):
        f = lu_factor(np.eye(3))
        with pytest.raises(ShapeError):
            lu_solve(f, np.ones(4))

    def test_solve_convenience(self):
        a = random_matrix(5, seed=3)
        b = np.arange(5.0)
        np.testing.assert_allclose(solve(a, b), np.linalg.solve(a, b), atol=1e-9)


class TestTriangularSolves:
    def test_forward(self):
        l = np.array([[2.0, 0.0], [1.0, 3.0]])
        x = forward_substitution(l, np.array([4.0, 11.0]))
        np.testing.assert_allclose(x, [2.0, 3.0])

    def test_forward_unit_diagonal_ignores_diag(self):
        l = np.array([[99.0, 0.0], [1.0, 99.0]])
        x = forward_substitution(l, np.array([1.0, 3.0]), unit_diagonal=True)
        np.testing.assert_allclose(x, [1.0, 2.0])

    def test_backward(self):
        u = np.array([[2.0, 1.0], [0.0, 4.0]])
        x = back_substitution(u, np.array([5.0, 8.0]))
        np.testing.assert_allclose(x, [1.5, 2.0])

    def test_forward_zero_diag_raises(self):
        with pytest.raises(SingularMatrixError):
            forward_substitution(np.zeros((2, 2)), np.ones(2))

    def test_backward_zero_diag_raises(self):
        with pytest.raises(SingularMatrixError):
            back_substitution(np.zeros((2, 2)), np.ones(2))


class TestCholesky:
    @pytest.mark.parametrize("n", [1, 2, 5, 16])
    def test_reconstruction(self, n):
        rng = np.random.default_rng(300 + n)
        g = rng.standard_normal((n, n))
        a = g @ g.T + n * np.eye(n)
        l = cholesky(a)
        np.testing.assert_allclose(l @ l.T, a, atol=1e-9)
        assert np.allclose(l, np.tril(l))

    def test_not_positive_definite(self):
        with pytest.raises(NotPositiveDefiniteError):
            cholesky(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_negative_diag(self):
        with pytest.raises(NotPositiveDefiniteError):
            cholesky(-np.eye(3))


class TestQR:
    @pytest.mark.parametrize("shape", [(3, 3), (6, 3), (10, 7)])
    def test_qr_reconstruction(self, shape):
        rng = np.random.default_rng(shape[0] * 31 + shape[1])
        a = rng.standard_normal(shape)
        q, r = qr_householder(a)
        np.testing.assert_allclose(q @ r, a, atol=1e-9)
        np.testing.assert_allclose(q.T @ q, np.eye(shape[0]), atol=1e-9)
        np.testing.assert_allclose(r, np.triu(r), atol=1e-12)

    def test_qr_solve_least_squares(self):
        rng = np.random.default_rng(9)
        a = rng.standard_normal((12, 4))
        b = rng.standard_normal(12)
        x = qr_solve(a, b)
        expected, *_ = np.linalg.lstsq(a, b, rcond=None)
        np.testing.assert_allclose(x, expected, atol=1e-8)

    def test_wide_matrix_raises(self):
        with pytest.raises(ShapeError):
            qr_householder(np.ones((2, 5)))


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_lu_roundtrip(n, seed):
    """PA = LU holds and solve() inverts matvec for any well-conditioned A."""
    a = random_matrix(n, seed)
    f = lu_factor(a)
    np.testing.assert_allclose(a[f.permutation()], f.lower() @ f.upper(), atol=1e-8)
    x_true = np.random.default_rng(seed).standard_normal(n)
    np.testing.assert_allclose(lu_solve(f, a @ x_true), x_true, atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_cholesky_matches_lu_solve(n, seed):
    """Cholesky-based solve agrees with LU-based solve on SPD systems."""
    rng = np.random.default_rng(seed)
    g = rng.standard_normal((n, n))
    a = g @ g.T + n * np.eye(n)
    b = rng.standard_normal(n)
    l = cholesky(a)
    y = forward_substitution(l, b)
    x_chol = back_substitution(l.T, y)
    np.testing.assert_allclose(x_chol, solve(a, b), atol=1e-6)
