"""Tests for Gilbert–Peierls sparse LU and its level schedule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, SingularMatrixError
from repro.la.sparse import CSCMatrix
from repro.la.sparse_lu import sparse_lu_factor


def random_sparse_spd_like(n, density, seed):
    """Random sparse matrix made comfortably nonsingular."""
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n))
    dense[rng.random((n, n)) > density] = 0.0
    dense += (n + 1.0) * np.eye(n)
    return dense


class TestSparseLUCorrectness:
    @pytest.mark.parametrize("n,density", [(1, 1.0), (3, 0.8), (8, 0.4), (20, 0.2), (40, 0.1)])
    def test_solve_matches_numpy(self, n, density):
        dense = random_sparse_spd_like(n, density, seed=n)
        lu = sparse_lu_factor(CSCMatrix.from_dense(dense))
        b = np.random.default_rng(n + 7).standard_normal(n)
        np.testing.assert_allclose(lu.solve(b), np.linalg.solve(dense, b), atol=1e-7)

    def test_factor_reconstruction(self):
        dense = random_sparse_spd_like(10, 0.3, seed=5)
        lu = sparse_lu_factor(CSCMatrix.from_dense(dense))
        reconstructed = lu.l.to_dense() @ lu.u.to_dense()
        np.testing.assert_allclose(dense[lu.row_perm], reconstructed, atol=1e-9)

    def test_requires_pivoting(self):
        dense = np.array([[0.0, 1.0], [1.0, 0.0]])
        lu = sparse_lu_factor(CSCMatrix.from_dense(dense))
        b = np.array([2.0, 3.0])
        np.testing.assert_allclose(lu.solve(b), [3.0, 2.0], atol=1e-12)

    def test_singular_raises(self):
        dense = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(SingularMatrixError):
            sparse_lu_factor(CSCMatrix.from_dense(dense))

    def test_structurally_singular_raises(self):
        dense = np.array([[1.0, 0.0], [0.0, 0.0]])
        with pytest.raises(SingularMatrixError):
            sparse_lu_factor(CSCMatrix.from_dense(dense))

    def test_non_square_raises(self):
        with pytest.raises(ShapeError):
            sparse_lu_factor(CSCMatrix.from_dense(np.ones((2, 3))))

    def test_rhs_length_mismatch(self):
        lu = sparse_lu_factor(CSCMatrix.from_dense(np.eye(2)))
        with pytest.raises(ShapeError):
            lu.solve(np.ones(3))


class TestLevelSchedule:
    def test_diagonal_is_single_level(self):
        lu = sparse_lu_factor(CSCMatrix.from_dense(np.diag([1.0, 2.0, 3.0])))
        assert lu.num_levels == 1
        np.testing.assert_array_equal(lu.levels, [0, 0, 0])

    def test_lower_bidiagonal_is_single_level(self):
        # L = A, U = I: no column depends on another, fully parallel.
        n = 6
        dense = np.eye(n)
        for i in range(1, n):
            dense[i, i - 1] = 1.0
        lu = sparse_lu_factor(CSCMatrix.from_dense(dense))
        assert lu.num_levels == 1

    def test_tridiagonal_is_serial_chain(self):
        # Each column's U entry couples it to the previous column.
        n = 6
        dense = 4.0 * np.eye(n)
        for i in range(1, n):
            dense[i, i - 1] = 1.0
            dense[i - 1, i] = 1.0
        lu = sparse_lu_factor(CSCMatrix.from_dense(dense))
        assert lu.num_levels == n

    def test_block_diagonal_parallelism(self):
        # Two independent 2x2 blocks: levels must not couple them.
        block = np.array([[3.0, 1.0], [1.0, 3.0]])
        dense = np.zeros((4, 4))
        dense[:2, :2] = block
        dense[2:, 2:] = block
        lu = sparse_lu_factor(CSCMatrix.from_dense(dense))
        assert lu.num_levels == 2

    def test_fill_ratio_le_one_for_diagonal(self):
        lu = sparse_lu_factor(CSCMatrix.from_dense(np.eye(5)))
        assert lu.fill_ratio == pytest.approx(2 * 5 / 25.0)

    def test_levels_monotone_along_dependencies(self):
        dense = random_sparse_spd_like(15, 0.25, seed=2)
        lu = sparse_lu_factor(CSCMatrix.from_dense(dense))
        # A column's level exceeds every column that appears above the
        # diagonal in its U column (its true dependencies).
        for j in range(15):
            rows, _ = lu.u.get_col(j)
            for k in rows:
                if k != j:
                    assert lu.levels[j] > lu.levels[k]


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=15),
    density=st.floats(min_value=0.1, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_sparse_lu_solves(n, density, seed):
    """Sparse LU solve inverts the dense operator for any nonsingular input."""
    dense = random_sparse_spd_like(n, density, seed)
    lu = sparse_lu_factor(CSCMatrix.from_dense(dense))
    x_true = np.random.default_rng(seed ^ 0x5EED).standard_normal(n)
    np.testing.assert_allclose(lu.solve(dense @ x_true), x_true, atol=1e-6)
    assert 1 <= lu.num_levels <= n
