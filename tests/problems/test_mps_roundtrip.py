"""MPS write→read round-trips on generated instances: every coefficient,
bound, and integrality marker must survive exactly."""

import io

import numpy as np
import pytest

from repro.errors import ProblemFormatError
from repro.mip.problem import MIPProblem
from repro.problems.knapsack import generate_knapsack
from repro.problems.mps import read_mps, write_mps
from repro.problems.random_mip import generate_random_mip


def _roundtrip(problem):
    buffer = io.StringIO()
    write_mps(problem, buffer)
    buffer.seek(0)
    return read_mps(buffer)


def _assert_identical(a, b):
    np.testing.assert_array_equal(a.c, b.c)
    np.testing.assert_array_equal(a.integer, b.integer)
    if a.a_ub is None:
        assert b.a_ub is None or b.a_ub.size == 0
    else:
        np.testing.assert_array_equal(a.a_ub, b.a_ub)
        np.testing.assert_array_equal(a.b_ub, b.b_ub)
    if a.a_eq is None:
        assert b.a_eq is None or b.a_eq.size == 0
    else:
        np.testing.assert_array_equal(a.a_eq, b.a_eq)
        np.testing.assert_array_equal(a.b_eq, b.b_eq)
    np.testing.assert_array_equal(a.lb, b.lb)
    np.testing.assert_array_equal(a.ub, b.ub)


class TestExactRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_mip_roundtrip_is_exact(self, seed):
        problem = generate_random_mip(
            8, 6, seed=seed, density=0.3 + 0.08 * seed
        )
        _assert_identical(problem, _roundtrip(problem))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_knapsack_roundtrip_is_exact(self, seed):
        problem = generate_knapsack(12, seed=seed)
        _assert_identical(problem, _roundtrip(problem))

    def test_awkward_float_coefficients_survive(self):
        # repr-based writing must preserve full float64 precision.
        c = np.array([0.1, 1 / 3, 1e-17 + 1.0, 123456789.123456789])
        problem = MIPProblem(
            c=c,
            integer=np.array([False, True, False, True]),
            a_ub=np.array([[0.30000000000000004, 2.0, np.pi, 1e-300]]),
            b_ub=np.array([7.000000000000001]),
            lb=np.array([0.0, 0.0, -2.5, 0.0]),
            ub=np.array([1.0, 3.0, 2.5, 4.0]),
        )
        _assert_identical(problem, _roundtrip(problem))

    def test_free_and_fixed_bounds_survive(self):
        problem = MIPProblem(
            c=np.array([1.0, -1.0, 2.0]),
            integer=np.array([False, False, True]),
            a_ub=np.array([[1.0, 1.0, 1.0]]),
            b_ub=np.array([10.0]),
            lb=np.array([-np.inf, 2.5, 0.0]),
            ub=np.array([np.inf, 2.5, 3.0]),
        )
        back = _roundtrip(problem)
        _assert_identical(problem, back)
        assert back.lb[0] == -np.inf and back.ub[0] == np.inf
        assert back.lb[1] == back.ub[1] == 2.5

    def test_double_roundtrip_is_byte_identical(self):
        problem = generate_random_mip(7, 5, seed=3)
        first = io.StringIO()
        write_mps(problem, first)
        second = io.StringIO()
        first.seek(0)
        write_mps(read_mps(first), second)
        assert first.getvalue() == second.getvalue()


class TestUnrepresentableBounds:
    def test_plus_inf_lower_bound_is_rejected_not_corrupted(self):
        problem = MIPProblem(
            c=np.array([1.0]),
            integer=np.array([False]),
            a_ub=np.array([[1.0]]),
            b_ub=np.array([1.0]),
            lb=np.array([np.inf]),
            ub=np.array([np.inf]),
        )
        with pytest.raises(ProblemFormatError):
            write_mps(problem, io.StringIO())

    def test_minus_inf_upper_bound_is_rejected_not_corrupted(self):
        problem = MIPProblem(
            c=np.array([1.0]),
            integer=np.array([False]),
            a_ub=np.array([[1.0]]),
            b_ub=np.array([1.0]),
            lb=np.array([-np.inf]),
            ub=np.array([-np.inf]),
        )
        with pytest.raises(ProblemFormatError):
            write_mps(problem, io.StringIO())
