"""Flow-shop model tests: makespan semantics and bound admissibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProblemFormatError
from repro.problems.flowshop import FlowShop, generate_flowshop


def naive_makespan(times, permutation):
    """Reference Gantt simulation, cell by cell."""
    m, _ = times.shape
    n = len(permutation)
    completion = np.zeros((m, n))
    for pos, job in enumerate(permutation):
        for machine in range(m):
            ready = completion[machine, pos - 1] if pos else 0.0
            upstream = completion[machine - 1, pos] if machine else 0.0
            completion[machine, pos] = max(ready, upstream) + times[machine, job]
    return float(completion[-1, -1])


class TestMakespan:
    def test_single_machine_is_sum(self):
        shop = FlowShop(times=np.array([[3.0, 5.0, 2.0]]))
        assert shop.makespan([0, 1, 2]) == pytest.approx(10.0)
        assert shop.makespan([2, 0, 1]) == pytest.approx(10.0)

    def test_two_machine_textbook(self):
        # Johnson's classic 2-machine example.
        times = np.array([[3.0, 5.0, 1.0], [2.0, 4.0, 7.0]])
        shop = FlowShop(times=times)
        assert shop.makespan([2, 1, 0]) == pytest.approx(
            naive_makespan(times, [2, 1, 0])
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive_simulation(self, seed):
        shop = generate_flowshop(6, 4, seed=seed)
        rng = np.random.default_rng(seed)
        perm = list(rng.permutation(6))
        assert shop.makespan(perm) == pytest.approx(
            naive_makespan(shop.times, perm)
        )

    def test_prefix_completion_consistent(self):
        shop = generate_flowshop(5, 3, seed=1)
        perm = [3, 1, 4, 0, 2]
        completion = shop.prefix_completion(perm)
        assert completion[-1] == pytest.approx(shop.makespan(perm))

    def test_validation(self):
        with pytest.raises(ProblemFormatError):
            FlowShop(times=np.array([[-1.0]]))
        with pytest.raises(ProblemFormatError):
            generate_flowshop(0, 3)


@settings(max_examples=30, deadline=None)
@given(
    jobs=st.integers(min_value=2, max_value=6),
    machines=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_bound_below_any_completion(jobs, machines, seed):
    """The LB at any prefix never exceeds the makespan of any completion."""
    shop = generate_flowshop(jobs, machines, seed=seed)
    rng = np.random.default_rng(seed ^ 0xF00)
    perm = list(rng.permutation(jobs))
    for cut in range(jobs):
        prefix = perm[:cut]
        assert shop.lower_bound(prefix) <= shop.makespan(perm) + 1e-9
