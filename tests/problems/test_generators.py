"""Generator determinism, feasibility, and oracle checks."""

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.errors import ProblemFormatError
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.assignment import (
    generate_assignment,
    generate_generalized_assignment,
)
from repro.problems.facility import generate_facility_location
from repro.problems.knapsack import generate_knapsack, knapsack_dp_optimal
from repro.problems.miplib import MINI_MIPLIB, instance_by_name
from repro.problems.random_mip import generate_random_mip
from repro.problems.setcover import generate_set_cover
from repro.problems.unit_commitment import generate_unit_commitment


def solve(p, **kw):
    return BranchAndBoundSolver(p, SolverOptions(**kw)).solve()


class TestKnapsack:
    def test_deterministic(self):
        a = generate_knapsack(10, seed=3)
        b = generate_knapsack(10, seed=3)
        np.testing.assert_array_equal(a.c, b.c)
        np.testing.assert_array_equal(a.a_ub, b.a_ub)

    def test_correlations(self):
        for corr in ("uncorrelated", "weak", "strong"):
            p = generate_knapsack(8, seed=1, correlation=corr)
            assert p.is_pure_binary

    def test_bad_correlation(self):
        with pytest.raises(ProblemFormatError):
            generate_knapsack(5, correlation="nope")

    def test_dp_oracle_against_brute_force(self):
        import itertools

        p = generate_knapsack(10, seed=7)
        best = -np.inf
        for bits in itertools.product([0, 1], repeat=10):
            x = np.array(bits, dtype=float)
            if p.is_feasible(x):
                best = max(best, p.objective(x))
        dp, x_dp = knapsack_dp_optimal(p)
        assert dp == pytest.approx(best)
        assert p.is_feasible(x_dp)
        assert p.objective(x_dp) == pytest.approx(dp)


class TestAssignment:
    @pytest.mark.parametrize("size", [3, 4])
    def test_matches_hungarian(self, size):
        p = generate_assignment(size, seed=size)
        profit = p.c.reshape(size, size)
        rows, cols = linear_sum_assignment(-profit)
        expected = profit[rows, cols].sum()
        res = solve(p)
        assert res.status is MIPStatus.OPTIMAL
        assert res.objective == pytest.approx(expected)

    def test_gap_solvable_and_feasible(self):
        p = generate_generalized_assignment(3, 6, seed=1)
        res = solve(p)
        assert res.status is MIPStatus.OPTIMAL
        assert p.is_feasible(res.x)

    def test_gap_assignment_rows_hold(self):
        p = generate_generalized_assignment(3, 6, seed=2)
        res = solve(p)
        x = res.x.reshape(3, 6)
        np.testing.assert_allclose(x.sum(axis=0), np.ones(6), atol=1e-6)


class TestSetCover:
    def test_every_element_coverable(self):
        p = generate_set_cover(10, 20, seed=0)
        # all-ones covers everything.
        assert p.is_feasible(np.ones(20))

    def test_solution_covers(self):
        p = generate_set_cover(8, 16, seed=1)
        res = solve(p)
        assert res.status is MIPStatus.OPTIMAL
        covered = (-p.a_ub) @ res.x
        assert np.all(covered >= 1.0 - 1e-6)


class TestFacility:
    def test_solves_and_links_hold(self):
        p = generate_facility_location(3, 6, seed=0)
        res = solve(p)
        assert res.status is MIPStatus.OPTIMAL
        y = res.x[:3]
        x = res.x[3:].reshape(3, 6)
        # Service only from open facilities.
        for f in range(3):
            assert np.all(x[f] <= y[f] + 1e-6)
        np.testing.assert_allclose(x.sum(axis=0), np.ones(6), atol=1e-6)


class TestUnitCommitment:
    def test_mixed_integrality(self):
        p = generate_unit_commitment(3, 3, seed=0)
        assert 0 < p.num_integer < p.n  # true mixed program

    def test_solves_and_meets_demand(self):
        p = generate_unit_commitment(3, 2, seed=1)
        res = solve(p)
        assert res.status is MIPStatus.OPTIMAL
        assert p.is_feasible(res.x)

    def test_commitment_logic(self):
        g, t = 3, 2
        p = generate_unit_commitment(g, t, seed=2)
        res = solve(p)
        u = res.x[: g * t].reshape(g, t)
        power = res.x[g * t :].reshape(g, t)
        # No power from an off generator.
        assert np.all(power[u < 0.5] <= 1e-6)


class TestRandomMIP:
    def test_planted_point_feasible(self):
        p = generate_random_mip(10, 6, seed=0, density=0.5)
        res = solve(p)
        assert res.status is MIPStatus.OPTIMAL

    @pytest.mark.parametrize("density", [0.1, 0.5, 1.0])
    def test_density_respected(self, density):
        p = generate_random_mip(40, 20, seed=1, density=density)
        actual = np.count_nonzero(p.a_ub) / p.a_ub.size
        assert abs(actual - density) < 0.15

    def test_bad_density(self):
        with pytest.raises(ProblemFormatError):
            generate_random_mip(5, 5, density=0.0)


class TestMiniMiplib:
    def test_registry_complete(self):
        assert len(MINI_MIPLIB) >= 10

    @pytest.mark.parametrize("name", sorted(MINI_MIPLIB))
    def test_all_instances_construct(self, name):
        p = instance_by_name(name)
        assert p.n >= 1

    def test_unknown_instance(self):
        with pytest.raises(ProblemFormatError):
            instance_by_name("nope")

    @pytest.mark.parametrize("name", ["knap-20", "cover-15x30", "gap-3x8", "uc-3x4"])
    def test_selected_instances_solve(self, name):
        p = instance_by_name(name)
        res = solve(p, node_limit=5000)
        assert res.status is MIPStatus.OPTIMAL
        assert p.is_feasible(res.x)
