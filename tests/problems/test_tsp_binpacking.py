"""TSP (MTZ) and bin-packing generator tests."""

import itertools

import numpy as np
import pytest

from repro.errors import ProblemFormatError
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.binpacking import (
    first_fit_decreasing_bins,
    generate_bin_packing,
)
from repro.problems.tsp import generate_tsp, tour_from_solution, tour_length


def brute_force_tsp(num_cities, seed):
    best = np.inf
    for perm in itertools.permutations(range(1, num_cities)):
        tour = [0] + list(perm)
        best = min(best, tour_length(num_cities, seed, tour))
    return best


class TestTSP:
    @pytest.mark.parametrize("n,seed", [(4, 0), (5, 1)])
    def test_matches_brute_force(self, n, seed):
        p = generate_tsp(n, seed=seed)
        res = BranchAndBoundSolver(p, SolverOptions(node_limit=20000)).solve()
        assert res.status is MIPStatus.OPTIMAL
        expected = brute_force_tsp(n, seed)
        assert -res.objective == pytest.approx(expected)

    def test_solution_is_a_tour(self):
        n, seed = 5, 2
        p = generate_tsp(n, seed=seed)
        res = BranchAndBoundSolver(p, SolverOptions(node_limit=20000)).solve()
        tour = tour_from_solution(p, res.x, n)
        assert sorted(tour) == list(range(n))
        assert tour_length(n, seed, tour) == pytest.approx(-res.objective)

    def test_too_small_rejected(self):
        with pytest.raises(ProblemFormatError):
            generate_tsp(2)

    def test_is_mixed_integer(self):
        p = generate_tsp(5, seed=0)
        assert 0 < p.num_integer < p.n  # MTZ u vars are continuous


class TestBinPacking:
    def test_optimal_bin_count_matches_or_beats_ffd(self):
        sizes_seed = 3
        p = generate_bin_packing(6, 4, seed=sizes_seed)
        res = BranchAndBoundSolver(p, SolverOptions(node_limit=50000)).solve()
        assert res.status is MIPStatus.OPTIMAL
        used = int(round(-(res.objective - 0)))  # epsilon terms < 1e-2
        rng = np.random.default_rng(sizes_seed)
        sizes = rng.uniform(20.0, 60.0, size=6).round()
        ffd = first_fit_decreasing_bins(sizes, 100.0)
        bins_used = int(np.sum(res.x[:4] > 0.5))
        assert bins_used <= ffd
        # Every item in exactly one bin; capacities respected.
        x = res.x[4:].reshape(6, 4)
        np.testing.assert_allclose(x.sum(axis=1), np.ones(6), atol=1e-6)
        for b in range(4):
            assert sizes @ x[:, b] <= 100.0 + 1e-6

    def test_oversized_item_rejected(self):
        with pytest.raises(ProblemFormatError):
            generate_bin_packing(3, 2, seed=0, capacity=10.0)

    def test_ffd_oracle_sane(self):
        assert first_fit_decreasing_bins(np.array([60, 60, 40, 40]), 100) == 2
        assert first_fit_decreasing_bins(np.array([51, 51, 51]), 100) == 3
