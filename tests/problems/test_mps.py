"""MPS round-trip tests."""

import io

import numpy as np
import pytest

from repro.errors import ProblemFormatError
from repro.mip.result import MIPStatus
from repro.mip.solver import BranchAndBoundSolver, SolverOptions
from repro.problems.knapsack import generate_knapsack
from repro.problems.mps import read_mps, write_mps
from repro.problems.random_mip import generate_random_mip
from repro.problems.unit_commitment import generate_unit_commitment


def roundtrip(problem):
    buf = io.StringIO()
    write_mps(problem, buf)
    buf.seek(0)
    return read_mps(buf)


def assert_equivalent(a, b):
    np.testing.assert_allclose(a.c, b.c)
    np.testing.assert_array_equal(a.integer, b.integer)
    np.testing.assert_allclose(a.lb, b.lb)
    np.testing.assert_allclose(a.ub, b.ub)
    if a.a_ub is None:
        assert b.a_ub is None
    else:
        np.testing.assert_allclose(a.a_ub, b.a_ub)
        np.testing.assert_allclose(a.b_ub, b.b_ub)
    if a.a_eq is None:
        assert b.a_eq is None
    else:
        np.testing.assert_allclose(a.a_eq, b.a_eq)
        np.testing.assert_allclose(a.b_eq, b.b_eq)


class TestRoundTrip:
    def test_knapsack(self):
        p = generate_knapsack(12, seed=0)
        assert_equivalent(p, roundtrip(p))

    def test_random_mixed(self):
        p = generate_random_mip(8, 5, seed=1, integer_fraction=0.5)
        assert_equivalent(p, roundtrip(p))

    def test_unit_commitment_with_equalities(self):
        p = generate_unit_commitment(2, 2, seed=0)
        assert_equivalent(p, roundtrip(p))

    def test_solution_survives_roundtrip(self):
        p = generate_knapsack(10, seed=5)
        direct = BranchAndBoundSolver(p, SolverOptions()).solve()
        via_mps = BranchAndBoundSolver(roundtrip(p), SolverOptions()).solve()
        assert direct.objective == pytest.approx(via_mps.objective)

    def test_file_roundtrip(self, tmp_path):
        p = generate_knapsack(6, seed=2)
        path = str(tmp_path / "model.mps")
        write_mps(p, path)
        assert_equivalent(p, read_mps(path))


class TestReader:
    def test_minimization_negates(self):
        text = """NAME test
ROWS
 N  OBJ
 L  R0
COLUMNS
    X0        OBJ       2.0
    X0        R0        1.0
RHS
    RHS       R0        4.0
BOUNDS
 UP BND       X0        10.0
ENDATA
"""
        p = read_mps(io.StringIO(text))
        assert p.c[0] == pytest.approx(-2.0)  # min 2x == max -2x

    def test_g_rows_negated(self):
        text = """NAME test
OBJSENSE
    MAX
ROWS
 N  OBJ
 G  R0
COLUMNS
    X0        OBJ       1.0
    X0        R0        1.0
RHS
    RHS       R0        2.0
BOUNDS
 UP BND       X0        10.0
ENDATA
"""
        p = read_mps(io.StringIO(text))
        np.testing.assert_allclose(p.a_ub, [[-1.0]])
        np.testing.assert_allclose(p.b_ub, [-2.0])

    def test_binary_bound(self):
        text = """NAME test
OBJSENSE
    MAX
ROWS
 N  OBJ
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    X0        OBJ       1.0
    MARKER                 'MARKER'                 'INTEND'
BOUNDS
 BV BND       X0
ENDATA
"""
        p = read_mps(io.StringIO(text))
        assert p.integer[0]
        assert p.lb[0] == 0.0 and p.ub[0] == 1.0

    def test_ranges_unsupported(self):
        text = "NAME t\nROWS\n N OBJ\nRANGES\n    RNG  R0  1.0\nENDATA\n"
        with pytest.raises(ProblemFormatError):
            read_mps(io.StringIO(text))

    def test_empty_columns_rejected(self):
        text = "NAME t\nROWS\n N OBJ\nENDATA\n"
        with pytest.raises(ProblemFormatError):
            read_mps(io.StringIO(text))
