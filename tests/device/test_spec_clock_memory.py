"""Tests for device specs, the simulated clock, and the memory pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.clock import SimClock
from repro.device.memory import MemoryPool
from repro.device.spec import A100, CPU_HOST, NVLINK, PCIE3, V100
from repro.errors import DeviceError, DeviceMemoryError, InvalidHandleError


class TestDeviceSpec:
    def test_utilization_saturates(self):
        assert V100.utilization(10**9) == 1.0

    def test_utilization_small_kernel(self):
        u = V100.utilization(V100.parallel_lanes // 4)
        assert u == pytest.approx(0.25)

    def test_utilization_zero_elements(self):
        assert 0.0 < V100.utilization(0) < 1e-3

    def test_sparse_efficiency_lower_than_dense(self):
        for spec in (V100, A100, CPU_HOST):
            assert spec.sparse_efficiency < spec.dense_efficiency

    def test_cpu_relative_sparse_efficiency_higher(self):
        # The §5.4 asymmetry: CPUs tolerate irregularity better.
        assert (
            CPU_HOST.sparse_efficiency / CPU_HOST.dense_efficiency
            > V100.sparse_efficiency / V100.dense_efficiency
        )

    def test_effective_flops_dense_vs_sparse(self):
        big = 10**9
        assert V100.effective_flops(big) > 10 * V100.effective_flops(big, sparse=True)

    def test_gpu_peak_exceeds_cpu_peak(self):
        assert V100.peak_flops > CPU_HOST.peak_flops

    def test_cpu_memory_capacity_order_of_magnitude_larger(self):
        # §3: CPU memory "an order of magnitude greater" than GPU memory.
        assert CPU_HOST.mem_capacity >= 6 * A100.mem_capacity


class TestLinkSpec:
    def test_transfer_time_includes_latency(self):
        assert PCIE3.transfer_time(0) == pytest.approx(PCIE3.latency)

    def test_bandwidth_term(self):
        t = PCIE3.transfer_time(12_000_000_000)
        assert t == pytest.approx(PCIE3.latency + 1.0)

    def test_nvlink_faster_than_pcie(self):
        nbytes = 100 * 1024 * 1024
        assert NVLINK.transfer_time(nbytes) < PCIE3.transfer_time(nbytes)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_advance_raises(self):
        with pytest.raises(DeviceError):
            SimClock().advance(-1.0)

    def test_negative_start_raises(self):
        with pytest.raises(DeviceError):
            SimClock(-1.0)

    def test_advance_to_never_goes_back(self):
        clock = SimClock(5.0)
        clock.advance_to(3.0)
        assert clock.now == 5.0
        clock.advance_to(7.0)
        assert clock.now == 7.0


class TestMemoryPool:
    def test_alloc_free_cycle(self):
        pool = MemoryPool(100)
        h = pool.alloc(60)
        assert pool.used == 60 and pool.free == 40
        assert pool.freeing(h) == 60
        assert pool.used == 0

    def test_oom_raises_with_details(self):
        pool = MemoryPool(100)
        pool.alloc(80)
        with pytest.raises(DeviceMemoryError) as err:
            pool.alloc(30)
        assert err.value.requested == 30
        assert err.value.free == 20
        assert err.value.capacity == 100

    def test_peak_tracks_high_water(self):
        pool = MemoryPool(100)
        a = pool.alloc(70)
        pool.freeing(a)
        pool.alloc(30)
        assert pool.peak == 70

    def test_double_free_raises(self):
        pool = MemoryPool(10)
        h = pool.alloc(5)
        pool.freeing(h)
        with pytest.raises(InvalidHandleError):
            pool.freeing(h)

    def test_would_fit(self):
        pool = MemoryPool(10)
        assert pool.would_fit(10)
        assert not pool.would_fit(11)
        assert not pool.would_fit(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(0)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(10).alloc(-1)


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=20)
)
def test_property_memory_conservation(sizes):
    """used == sum(live allocations) and never exceeds capacity."""
    pool = MemoryPool(1000)
    live = {}
    for i, size in enumerate(sizes):
        if pool.would_fit(size):
            live[pool.alloc(size)] = size
        if i % 3 == 2 and live:
            handle = next(iter(live))
            pool.freeing(handle)
            del live[handle]
        assert pool.used == sum(live.values())
        assert 0 <= pool.used <= pool.capacity
        assert pool.num_allocations == len(live)
