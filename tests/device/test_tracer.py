"""Tests for the device operation tracer."""

import numpy as np
import pytest

from repro.device.gpu import Device
from repro.device.spec import V100
from repro.device.tracer import Tracer


def make_traced():
    device = Device(V100)
    return device, Tracer(device)


class TestTracer:
    def test_kernel_events_recorded(self):
        device, tracer = make_traced()
        a = device.alloc(np.eye(8) * 2)
        x = device.alloc(np.ones(8))
        device.gemv(a, x)
        names = [e.name for e in tracer.events]
        assert "gemv" in names

    def test_transfer_events_recorded(self):
        device, tracer = make_traced()
        arr = device.upload(np.ones(100))
        device.download(arr)
        kinds = [e.kind for e in tracer.events]
        assert kinds.count("h2d") == 1
        assert kinds.count("d2h") == 1
        assert tracer.total_transfer_bytes() == 1600

    def test_events_ordered_in_time(self):
        device, tracer = make_traced()
        a = device.alloc(np.eye(16) + 15 * np.eye(16))
        f = device.lu_factor(a)
        device.lu_solve(f, device.alloc(np.ones(16)))
        starts = [e.start for e in tracer.events]
        assert starts == sorted(starts)
        for event in tracer.events:
            assert event.end >= event.start

    def test_utilization_report(self):
        device, tracer = make_traced()
        a = device.alloc(np.eye(8) * 3)
        device.lu_factor(a)
        device.lu_factor(device.alloc(np.eye(8) * 4))
        report = tracer.utilization_report()
        assert report["getrf"] > 0
        assert report["getrf"] == pytest.approx(
            device.metrics.time("time.kernel.getrf")
        )

    def test_detach_stops_recording(self):
        device, tracer = make_traced()
        device.upload(np.ones(4))
        count = len(tracer.events)
        tracer.detach()
        device.upload(np.ones(4))
        assert len(tracer.events) == count

    def test_timeline_renders(self):
        device, tracer = make_traced()
        device.upload(np.ones(4))
        text = tracer.timeline()
        assert "h2d" in text and "µs" in text

    def test_stream_events_record_stream_start(self):
        device, tracer = make_traced()
        stream = device.create_stream()
        a = device.alloc(np.eye(8) * 2)
        device.lu_factor(a, stream=stream)
        device.lu_factor(a, stream=stream)
        events = [e for e in tracer.events if e.name == "getrf"]
        assert events[1].start >= events[0].end - 1e-15
