"""Multi-GPU device group tests."""

import numpy as np
import pytest

from repro.device.group import DeviceGroup
from repro.device.spec import NVLINK, PCIE3
from repro.errors import DeviceError


class TestDeviceGroup:
    def test_construction(self):
        group = DeviceGroup(4)
        assert group.size == 4
        assert group.makespan == 0.0

    def test_bad_size(self):
        with pytest.raises(DeviceError):
            DeviceGroup(0)

    def test_bad_rank(self):
        with pytest.raises(DeviceError):
            DeviceGroup(2).device(5)

    def test_peer_transfer_advances_both_clocks(self):
        group = DeviceGroup(2)
        seconds = group.peer_transfer(0, 1, 1024 * 1024)
        assert seconds > 0
        assert group.device(0).clock.now == pytest.approx(seconds)
        assert group.device(1).clock.now == pytest.approx(seconds)
        assert group.metrics.count("p2p.transfers") == 1

    def test_self_transfer_free(self):
        group = DeviceGroup(2)
        assert group.peer_transfer(1, 1, 10**9) == 0.0
        assert group.makespan == 0.0

    def test_transfer_waits_for_busy_peer(self):
        group = DeviceGroup(2)
        group.device(0).clock.advance(1.0)  # src busy until t=1
        group.peer_transfer(0, 1, 8)
        assert group.device(1).clock.now > 1.0

    def test_nvlink_faster_than_pcie_roundtrip(self):
        nv = DeviceGroup(2, peer_link=NVLINK)
        pcie_like = DeviceGroup(2, peer_link=PCIE3)
        nbytes = 64 * 1024 * 1024
        assert nv.peer_transfer(0, 1, nbytes) < pcie_like.peer_transfer(0, 1, nbytes)

    def test_allreduce_scales_with_ring(self):
        small = DeviceGroup(2)
        large = DeviceGroup(8)
        nbytes = 1024 * 1024
        t_small = small.allreduce(nbytes)
        t_large = large.allreduce(nbytes)
        # Ring allreduce: 2(k-1) chunk steps; more steps but smaller
        # chunks -> sublinear growth, still larger for bigger rings at
        # this latency-dominated size.
        assert t_large > t_small

    def test_allreduce_single_device_free(self):
        assert DeviceGroup(1).allreduce(10**6) == 0.0

    def test_broadcast_aligns_clocks(self):
        group = DeviceGroup(4)
        group.device(2).clock.advance(0.5)
        group.broadcast(0, 4096)
        clocks = {round(d.clock.now, 12) for d in group.devices}
        assert len(clocks) == 1
        assert group.makespan > 0.5

    def test_synchronize(self):
        group = DeviceGroup(3)
        group.device(1).clock.advance(2.0)
        finish = group.synchronize()
        assert finish == pytest.approx(2.0)
        assert all(d.clock.now == pytest.approx(2.0) for d in group.devices)


class TestBigMipIntraNode:
    def test_nvlink_reduces_big_mip_overhead(self):
        from repro.mip.solver import BranchAndBoundSolver, SolverOptions
        from repro.problems.knapsack import generate_knapsack
        from repro.strategies.big_mip import BigMipEngine

        problem = generate_knapsack(12, seed=1)
        inter = BigMipEngine(num_devices=4, intra_node=False)
        BranchAndBoundSolver(problem, SolverOptions(), engine=inter).solve()
        intra = BigMipEngine(num_devices=4, intra_node=True)
        result = BranchAndBoundSolver(problem, SolverOptions(), engine=intra).solve()
        assert result.ok
        # Direct GPU-GPU reduction beats host-mediated messages (§3.1).
        assert intra.elapsed_seconds < inter.elapsed_seconds
