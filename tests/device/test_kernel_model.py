"""Property tests for the roofline kernel cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device import kernels as K
from repro.device.spec import A100, CPU_HOST, MI100, V100

SPECS = [V100, A100, MI100, CPU_HOST]


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=2048),
    spec_idx=st.integers(min_value=0, max_value=3),
)
def test_property_duration_positive_and_monotone(n, spec_idx):
    """Every kernel costs > launch latency, and bigger never costs less."""
    spec = SPECS[spec_idx]
    for builder in (K.getrf_kernel, K.potrf_kernel, K.trsv_kernel):
        small = builder(n).duration(spec)
        large = builder(2 * n).duration(spec)
        assert small >= spec.kernel_launch_latency
        assert large >= small


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=512),
    n=st.integers(min_value=1, max_value=512),
    k=st.integers(min_value=1, max_value=512),
)
def test_property_gemm_scales_with_every_dim(m, n, k):
    base = K.gemm_kernel(m, n, k).duration(V100)
    assert K.gemm_kernel(2 * m, n, k).duration(V100) >= base
    assert K.gemm_kernel(m, 2 * n, k).duration(V100) >= base
    assert K.gemm_kernel(m, n, 2 * k).duration(V100) >= base


@settings(max_examples=30, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=512),
    n=st.integers(min_value=2, max_value=64),
)
def test_property_batched_never_slower_than_looped(batch, n):
    """One batched launch is at most as slow as `batch` serial launches
    (up to the single-batch overhead constant)."""
    looped = batch * K.getrf_kernel(n).duration(V100)
    batched = K.batched_getrf_kernel(batch, n).duration(V100)
    if batch >= 4:
        assert batched <= looped


@settings(max_examples=30, deadline=None)
@given(
    nnz=st.integers(min_value=1, max_value=10**6),
    levels=st.integers(min_value=1, max_value=512),
)
def test_property_sparse_lu_monotone_in_levels(nnz, levels):
    fast = K.sparse_getrf_kernel(1024, nnz, levels).duration(V100)
    slow = K.sparse_getrf_kernel(1024, nnz, 2 * levels).duration(V100)
    assert slow >= fast


def test_sparse_kernels_use_sparse_efficiency():
    """At equal flop counts a sparse kernel is never cheaper than the
    dense one on a GPU (divergence penalty)."""
    n = 512
    dense = K.gemv_kernel(n, n)
    sparse = K.spmv_kernel(n, n * n)
    assert sparse.flops == dense.flops
    assert sparse.duration(V100) > dense.duration(V100)


def test_eta_chain_cheaper_than_refactorization():
    """§5.1's economics: a typical eta chain beats a fresh getrf."""
    for m in (64, 128, 256, 512):
        eta = K.eta_chain_kernel(m, 32).duration(V100)
        refactor = K.getrf_kernel(m).duration(V100)
        assert eta < refactor
