"""Tests for the Device facade: transfers, kernels, streams, PFI ops."""

import numpy as np
import pytest

from repro.device.gpu import Device
from repro.device.kernels import (
    batched_getrf_kernel,
    eta_chain_kernel,
    gemm_kernel,
    getrf_kernel,
    sparse_getrf_kernel,
    spmv_kernel,
)
from repro.device.spec import CPU_HOST, PCIE3, V100, DeviceSpec
from repro.errors import DeviceMemoryError, InvalidHandleError
from repro.la.sparse import CSCMatrix, CSRMatrix


def make_gpu(**overrides):
    return Device(V100, link=PCIE3)


class TestTransfersAndMemory:
    def test_upload_charges_transfer(self):
        dev = make_gpu()
        x = dev.upload(np.ones(1000))
        assert dev.metrics.count("transfers.h2d") == 1
        assert dev.metrics.count("transfers.h2d_bytes") == 8000
        assert dev.clock.now > 0
        assert x.alive

    def test_download_charges_transfer(self):
        dev = make_gpu()
        x = dev.upload(np.ones(10))
        out = dev.download(x)
        np.testing.assert_array_equal(out, np.ones(10))
        assert dev.metrics.count("transfers.d2h") == 1

    def test_host_device_transfers_free(self):
        host = Device(CPU_HOST)
        x = host.upload(np.ones(1000))
        host.download(x)
        assert host.metrics.count("transfers.h2d") == 0
        assert host.metrics.count("transfers.d2h") == 0
        assert host.clock.now == 0.0

    def test_free_releases_memory(self):
        dev = make_gpu()
        x = dev.upload(np.ones(100))
        used = dev.memory.used
        dev.free(x)
        assert dev.memory.used == used - 800
        assert not x.alive

    def test_use_after_free_raises(self):
        dev = make_gpu()
        x = dev.upload(np.ones(4))
        dev.free(x)
        with pytest.raises(InvalidHandleError):
            dev.download(x)

    def test_cross_device_use_raises(self):
        a, b = make_gpu(), make_gpu()
        x = a.upload(np.ones(4))
        with pytest.raises(InvalidHandleError):
            b.download(x)

    def test_oom_on_tiny_device(self):
        tiny = DeviceSpec(
            name="tiny",
            peak_flops=1e12,
            mem_bandwidth=1e11,
            mem_capacity=1024,
            kernel_launch_latency=1e-6,
            sync_latency=1e-7,
            dense_efficiency=0.8,
            sparse_efficiency=0.1,
            parallel_lanes=1024,
            max_concurrent_kernels=4,
        )
        dev = Device(tiny)
        with pytest.raises(DeviceMemoryError):
            dev.upload(np.ones(1000))


class TestKernelNumerics:
    def test_gemv_correct_and_charged(self):
        dev = make_gpu()
        a = dev.upload(np.array([[1.0, 2.0], [3.0, 4.0]]))
        x = dev.upload(np.array([1.0, 1.0]))
        y = dev.gemv(a, x)
        np.testing.assert_allclose(y.payload, [3.0, 7.0])
        assert dev.kernel_count("gemv") == 1

    def test_gemm_correct(self):
        dev = make_gpu()
        rng = np.random.default_rng(0)
        a_h, b_h = rng.standard_normal((4, 3)), rng.standard_normal((3, 5))
        c = dev.gemm(dev.upload(a_h), dev.upload(b_h))
        np.testing.assert_allclose(c.payload, a_h @ b_h, atol=1e-12)

    def test_dot_and_axpy(self):
        dev = make_gpu()
        x = dev.upload(np.array([1.0, 2.0]))
        y = dev.upload(np.array([3.0, 4.0]))
        assert dev.dot(x, y) == pytest.approx(11.0)
        dev.axpy(2.0, x, y)
        np.testing.assert_allclose(y.payload, [5.0, 8.0])

    def test_lu_factor_solve_on_device(self):
        dev = make_gpu()
        rng = np.random.default_rng(1)
        a_h = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        b_h = rng.standard_normal(6)
        f = dev.lu_factor(dev.upload(a_h))
        x = dev.lu_solve(f, dev.upload(b_h))
        np.testing.assert_allclose(x.payload, np.linalg.solve(a_h, b_h), atol=1e-8)
        assert dev.kernel_count("getrf") == 1
        assert dev.kernel_count("trsv") == 2

    def test_spmv_correct(self):
        dev = make_gpu()
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        a = dev.upload(CSRMatrix.from_dense(dense))
        x = dev.upload(np.array([3.0, 4.0]))
        y = dev.spmv(a, x)
        np.testing.assert_allclose(y.payload, [3.0, 8.0])
        assert dev.kernel_count("spmv") == 1

    def test_sparse_lu_solve_on_device(self):
        dev = make_gpu()
        rng = np.random.default_rng(2)
        dense = rng.standard_normal((8, 8))
        dense[rng.random((8, 8)) > 0.4] = 0.0
        dense += 9 * np.eye(8)
        f = dev.sparse_lu(dev.upload(CSCMatrix.from_dense(dense)))
        b_h = rng.standard_normal(8)
        x = dev.sparse_solve(f, dev.upload(b_h))
        np.testing.assert_allclose(x.payload, np.linalg.solve(dense, b_h), atol=1e-7)

    def test_batched_lu_on_device(self):
        dev = make_gpu()
        rng = np.random.default_rng(3)
        a_h = rng.standard_normal((5, 4, 4)) + 4 * np.eye(4)
        b_h = rng.standard_normal((5, 4))
        f = dev.batched_lu_factor(dev.upload(a_h))
        x = dev.batched_lu_solve(f, dev.upload(b_h))
        np.testing.assert_allclose(
            x.payload, np.linalg.solve(a_h, b_h[..., None])[..., 0], atol=1e-8
        )
        assert dev.kernel_count("batched_getrf") == 1


class TestPFIOnDevice:
    def test_ftran_update_btran_zero_transfers(self):
        """§5.1: resident basis updates move no data across the link."""
        dev = make_gpu()
        rng = np.random.default_rng(4)
        n = 5
        b_mat = rng.standard_normal((n, n)) + n * np.eye(n)
        d_basis = dev.upload(b_mat)
        pfi = dev.pfi_create(d_basis)
        transfers_before = dev.transfers.total_transfers

        current = b_mat.copy()
        for step in range(3):
            a_q = rng.standard_normal(n) + 1.0
            d_aq = dev.alloc(a_q)  # column already resident (part of A)
            w = dev.pfi_ftran(pfi, d_aq)
            pos = step
            if abs(w.payload[pos]) < 1e-8:
                continue
            dev.pfi_update(pfi, w, pos)
            current[:, pos] = a_q
            rhs = rng.standard_normal(n)
            d_rhs = dev.alloc(rhs)
            x = dev.pfi_ftran(pfi, d_rhs)
            np.testing.assert_allclose(
                x.payload, np.linalg.solve(current, rhs), atol=1e-7
            )
            y = dev.pfi_btran(pfi, d_rhs)
            np.testing.assert_allclose(
                y.payload, np.linalg.solve(current.T, rhs), atol=1e-7
            )
        assert dev.transfers.total_transfers == transfers_before
        assert dev.metrics.count("pfi.updates") == 3

    def test_refactorize_resets_and_counts(self):
        dev = make_gpu()
        n = 4
        b_mat = np.eye(n) * 2.0
        d_basis = dev.upload(b_mat)
        pfi = dev.pfi_create(d_basis)
        w = dev.pfi_ftran(pfi, dev.alloc(np.ones(n)))
        dev.pfi_update(pfi, w, 0)
        dev.pfi_refactorize(pfi, d_basis)
        assert pfi.payload.num_etas == 0
        assert dev.metrics.count("pfi.refactorizations") == 1


class TestStreams:
    def test_concurrent_streams_overlap(self):
        """K identical kernels on K streams finish in ~1 kernel time."""
        dev = make_gpu()
        n = 64
        mats = [np.eye(n) * (i + 2.0) for i in range(8)]
        arrays = [dev.alloc(m) for m in mats]
        serial_dev = make_gpu()
        serial_arrays = [serial_dev.alloc(m) for m in mats]

        t0 = dev.clock.now
        streams = [dev.create_stream() for _ in range(8)]
        for arr, s in zip(arrays, streams):
            dev.lu_factor(arr, stream=s)
        dev.synchronize()
        overlapped = dev.clock.now - t0

        t0 = serial_dev.clock.now
        for arr in serial_arrays:
            serial_dev.lu_factor(arr)
        serial = serial_dev.clock.now - t0

        assert overlapped < serial / 4

    def test_throughput_bound_beyond_max_concurrency(self):
        """More streams than max_concurrent_kernels can't keep speeding up."""
        dev = make_gpu()
        k = dev.spec.max_concurrent_kernels * 4
        n = 64
        arrays = [dev.alloc(np.eye(n) * (i + 2.0)) for i in range(k)]
        one_cost = getrf_kernel(n).duration(dev.spec)
        t0 = dev.clock.now
        for arr in arrays:
            dev.lu_factor(arr, stream=dev.create_stream())
        dev.synchronize()
        elapsed = dev.clock.now - t0
        expected_floor = k * one_cost / dev.spec.max_concurrent_kernels
        assert elapsed == pytest.approx(expected_floor, rel=1e-9)

    def test_sync_is_idempotent(self):
        dev = make_gpu()
        dev.synchronize()
        t = dev.clock.now
        dev.synchronize()
        assert dev.clock.now == t


class TestKernelCostModel:
    def test_getrf_scales_superlinearly(self):
        small = getrf_kernel(1024).duration(V100)
        large = getrf_kernel(4096).duration(V100)
        # 4x size → 64x flops; sync/latency terms soften the observed ratio.
        assert large > 10 * small

    def test_batched_cheaper_than_looped(self):
        """§5.5/§4.3: one batched launch beats k serial small launches."""
        k, n = 256, 16
        looped = k * getrf_kernel(n).duration(V100)
        batched = batched_getrf_kernel(k, n).duration(V100)
        assert batched < looped / 10

    def test_sparse_slower_than_dense_same_flops(self):
        """§5.4: sparse kernels sustain far less of peak."""
        n = 256
        dense = gemm_kernel(n, 1, n).duration(V100)
        sparse = spmv_kernel(n, n * n).duration(V100)  # same 2n² flops
        assert sparse > dense

    def test_eta_chain_linear_in_etas(self):
        short = eta_chain_kernel(128, 2).duration(V100)
        long = eta_chain_kernel(128, 64).duration(V100)
        assert long > short

    def test_sparse_getrf_level_sensitivity(self):
        """Few levels (parallel DAG) beats many levels at equal fill."""
        fast = sparse_getrf_kernel(1024, 10_000, 4).duration(V100)
        slow = sparse_getrf_kernel(1024, 10_000, 1024).duration(V100)
        assert slow > fast

    def test_cpu_beats_gpu_on_tiny_serial_kernels(self):
        """Launch latency + poor utilization make tiny kernels CPU wins."""
        tiny = getrf_kernel(8)
        assert tiny.duration(CPU_HOST) < tiny.duration(V100)

    def test_gpu_beats_cpu_on_large_dense(self):
        big = getrf_kernel(2048)
        assert big.duration(V100) < big.duration(CPU_HOST)
